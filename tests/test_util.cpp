// Tests for util: tagged ids, day intervals, RNG, CSV.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "rating/io.hpp"
#include "util/crc32.hpp"
#include "util/csv.hpp"
#include "util/day.hpp"
#include "util/error.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace rab {
namespace {

// ---------------------------------------------------------------- ids

TEST(Ids, DefaultIsInvalidSentinel) {
  RaterId id;
  EXPECT_EQ(id.value(), -1);
}

TEST(Ids, ValueRoundTrip) {
  ProductId id(42);
  EXPECT_EQ(id.value(), 42);
}

TEST(Ids, Ordering) {
  EXPECT_LT(RaterId(1), RaterId(2));
  EXPECT_EQ(RaterId(7), RaterId(7));
  EXPECT_NE(RaterId(7), RaterId(8));
}

TEST(Ids, HashDistinguishesValues) {
  std::unordered_set<RaterId> set;
  set.insert(RaterId(1));
  set.insert(RaterId(2));
  set.insert(RaterId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, StreamOutput) {
  std::ostringstream os;
  os << ProductId(5);
  EXPECT_EQ(os.str(), "5");
}

// ---------------------------------------------------------------- interval

TEST(Interval, LengthAndEmpty) {
  Interval iv{2.0, 5.0};
  EXPECT_DOUBLE_EQ(iv.length(), 3.0);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE((Interval{3.0, 3.0}).empty());
  EXPECT_TRUE((Interval{4.0, 3.0}).empty());
}

TEST(Interval, ContainsIsHalfOpen) {
  Interval iv{1.0, 2.0};
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(1.999));
  EXPECT_FALSE(iv.contains(2.0));
  EXPECT_FALSE(iv.contains(0.999));
}

TEST(Interval, Overlaps) {
  Interval a{0.0, 10.0};
  EXPECT_TRUE(a.overlaps(Interval{5.0, 15.0}));
  EXPECT_TRUE(a.overlaps(Interval{-5.0, 1.0}));
  EXPECT_FALSE(a.overlaps(Interval{10.0, 20.0}));  // half-open boundary
  EXPECT_FALSE(a.overlaps(Interval{-5.0, 0.0}));
}

TEST(Interval, Intersect) {
  Interval a{0.0, 10.0};
  Interval b{5.0, 15.0};
  EXPECT_EQ(a.intersect(b), (Interval{5.0, 10.0}));
  EXPECT_TRUE(a.intersect(Interval{20.0, 30.0}).empty());
}

TEST(Interval, MakeBinsCoversSpan) {
  const auto bins = make_bins(0.0, 90.0, 30.0);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins.front(), (Interval{0.0, 30.0}));
  EXPECT_EQ(bins.back(), (Interval{60.0, 90.0}));
}

TEST(Interval, MakeBinsTruncatesLast) {
  const auto bins = make_bins(0.0, 70.0, 30.0);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_DOUBLE_EQ(bins.back().end, 70.0);
  EXPECT_DOUBLE_EQ(bins.back().length(), 10.0);
}

TEST(Interval, MakeBinsRejectsBadArguments) {
  EXPECT_THROW(make_bins(0.0, 10.0, 0.0), Error);
  EXPECT_THROW(make_bins(10.0, 0.0, 5.0), Error);
}

TEST(Interval, MakeBinsEmptySpan) {
  EXPECT_TRUE(make_bins(5.0, 5.0, 30.0).empty());
}

// ---------------------------------------------------------------- rng

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng base(99);
  Rng f1 = base.fork(3);
  Rng f2 = Rng(99).fork(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(f1.uniform(0.0, 1.0), f2.uniform(0.0, 1.0));
  }
}

TEST(Rng, ForkStreamsDecorrelated) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.uniform(0.0, 1.0) == f2.uniform(0.0, 1.0)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo = saw_lo || x == 0;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianZeroSigmaIsMean) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(rng.gaussian(3.5, 0.0), 3.5);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian(2.0, 1.5);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 2.25, 0.15);
}

TEST(Rng, PoissonMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(4.0));
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(13);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(3.0, 2.0), Error);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), Error);
  EXPECT_THROW(rng.poisson(-1.0), Error);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.bernoulli(1.5), Error);
  EXPECT_THROW(rng.discrete({}), Error);
}

// ---------------------------------------------------------------- csv

TEST(Csv, ParseLineBasic) {
  const auto row = csv::parse_line("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[2], "c");
}

TEST(Csv, ParseLineEmptyFields) {
  const auto row = csv::parse_line("a,,c,");
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], "");
  EXPECT_EQ(row[3], "");
}

TEST(Csv, ParseLineStripsCarriageReturn) {
  const auto row = csv::parse_line("a,b\r");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
}

TEST(Csv, ReadSkipsCommentsAndBlank) {
  std::istringstream in("# header\n1,2\n\n3,4\n");
  const auto rows = csv::read(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "1");
  EXPECT_EQ(rows[1][1], "4");
}

TEST(Csv, WriteRowRoundTrip) {
  std::ostringstream out;
  csv::write_row(out, {"x", "1.5", "-3"});
  std::istringstream in(out.str());
  const auto rows = csv::read(in);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "x");
  EXPECT_DOUBLE_EQ(csv::to_double(rows[0][1]), 1.5);
  EXPECT_EQ(csv::to_int(rows[0][2]), -3);
}

TEST(Csv, ToDoubleRejectsGarbage) {
  EXPECT_THROW(csv::to_double("abc"), Error);
  EXPECT_THROW(csv::to_double("1.5x"), Error);
  EXPECT_THROW(csv::to_double(""), Error);
}

TEST(Csv, ToIntRejectsGarbage) {
  EXPECT_THROW(csv::to_int("1.5"), Error);
  EXPECT_THROW(csv::to_int(""), Error);
  EXPECT_EQ(csv::to_int("-17"), -17);
}

TEST(Csv, ToIntInEnforcesRange) {
  EXPECT_EQ(csv::to_int_in("5", 0, 10), 5);
  EXPECT_EQ(csv::to_int_in("0", 0, 10), 0);
  EXPECT_EQ(csv::to_int_in("10", 0, 10), 10);
  EXPECT_THROW(csv::to_int_in("-1", 0, 10), Error);
  EXPECT_THROW(csv::to_int_in("11", 0, 10), Error);
  EXPECT_THROW(csv::to_int_in("abc", 0, 10), Error);
}

TEST(Csv, ReadFileMissingThrows) {
  EXPECT_THROW(csv::read_file("/nonexistent/path.csv"), Error);
}

// ------------------------------------------------------------ csv fuzzing

/// Random hostile CSV field: digits, signs, exponents, control bytes,
/// overlong numbers, non-finite spellings — everything a malicious or
/// corrupted feed could put on the wire.
std::string fuzz_field(Rng& rng) {
  static const std::vector<std::string> nasty = {
      "",        "-",       "+",        ".",       "..",     "1e999999",
      "-1e999999", "0x1f",  "nan",      "inf",     "-inf",   "NaN",
      "1.5e",    "e5",      "1..2",     "--3",     "99999999999999999999",
      "-99999999999999999999", " 1",    "1 ",      "1,2",    "#",
      std::string(1, '\0'),  "3\t",     "\xff\xfe", "4.5x",  "true",
  };
  if (rng.bernoulli(0.4)) {
    return nasty[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nasty.size()) - 1))];
  }
  static const std::string charset =
      "0123456789+-.eE aZ#\t_%\x01\x7f";
  std::string out;
  const std::int64_t len = rng.uniform_int(0, 24);
  for (std::int64_t i = 0; i < len; ++i) {
    out.push_back(charset[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(charset.size()) - 1))]);
  }
  return out;
}

/// 10k seeded hostile fields through the scalar parsers: every call either
/// returns a value honoring the documented contract or throws
/// InvalidArgument — never another exception type, never a crash, never a
/// silent out-of-range coercion.
TEST(CsvFuzz, ScalarParsersParseOrThrowInvalidArgument) {
  Rng rng(20260806);
  for (int i = 0; i < 10'000; ++i) {
    const std::string field = fuzz_field(rng);
    try {
      const double d = csv::to_double(field);
      (void)d;  // NaN/inf are representable doubles; finiteness is the
                // rating layer's contract, not the field parser's.
    } catch (const InvalidArgument&) {
    } catch (const std::exception& e) {
      FAIL() << "to_double(" << testing::PrintToString(field)
             << ") threw non-InvalidArgument: " << e.what();
    }
    try {
      const long long v = csv::to_int_in(field, 0, 1'000'000);
      EXPECT_GE(v, 0) << testing::PrintToString(field);
      EXPECT_LE(v, 1'000'000) << testing::PrintToString(field);
    } catch (const InvalidArgument&) {
    } catch (const std::exception& e) {
      FAIL() << "to_int_in(" << testing::PrintToString(field)
             << ") threw non-InvalidArgument: " << e.what();
    }
  }
}

/// Whole hostile CSV documents through the dataset reader: parse fully or
/// throw InvalidArgument. (IoError is reserved for the environment; an
/// in-memory stream cannot produce it.)
TEST(CsvFuzz, DatasetReaderParsesOrThrowsInvalidArgument) {
  Rng rng(926);
  for (int doc = 0; doc < 400; ++doc) {
    std::string text;
    const std::int64_t lines = rng.uniform_int(0, 12);
    for (std::int64_t l = 0; l < lines; ++l) {
      const std::int64_t fields = rng.uniform_int(0, 7);
      for (std::int64_t f = 0; f < fields; ++f) {
        if (f > 0) text.push_back(',');
        text += fuzz_field(rng);
      }
      text.push_back(rng.bernoulli(0.9) ? '\n' : '\r');
    }
    std::istringstream in(text);
    try {
      const rating::Dataset data = rating::read_csv(in);
      // Accepted documents honor the dataset invariants: finite fields,
      // non-negative ids.
      for (ProductId id : data.product_ids()) {
        for (const auto& r : data.product(id).rows()) {
          EXPECT_TRUE(std::isfinite(r.time) && std::isfinite(r.value));
          EXPECT_GE(r.rater.value(), 0);
          EXPECT_GE(r.product.value(), 0);
        }
      }
    } catch (const InvalidArgument&) {
    } catch (const std::exception& e) {
      FAIL() << "read_csv threw non-InvalidArgument on doc " << doc << ": "
             << e.what();
    }
  }
}

// ---------------------------------------------------------------- crc32

TEST(Crc32, KnownVectors) {
  // The classic IEEE 802.3 check value.
  EXPECT_EQ(util::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(util::crc32(""), 0x00000000u);
  EXPECT_EQ(util::crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    std::uint32_t crc = util::kCrc32Init;
    crc = util::crc32_update(crc, data.data(), cut);
    crc = util::crc32_update(crc, data.data() + cut, data.size() - cut);
    EXPECT_EQ(util::crc32_final(crc), util::crc32(data)) << "cut " << cut;
  }
}

TEST(Crc32, SlicedMatchesBytewiseReference) {
  // The hot path is slice-by-8 with an alignment prologue and a bytewise
  // tail; cross-check it against the single-table reference on random
  // lengths and (mis)alignments so every code path in the sliced loop is
  // exercised.
  Rng rng(20260808);
  std::string data(64 * 1024, '\0');
  for (char& c : data) {
    c = static_cast<char>(rng.uniform_int(0, 255));
  }
  for (int round = 0; round < 64; ++round) {
    const auto off = static_cast<std::size_t>(rng.uniform_int(0, 15));
    const auto len = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(data.size() - off)));
    const std::uint32_t sliced =
        util::crc32_update(util::kCrc32Init, data.data() + off, len);
    const std::uint32_t bytewise =
        util::crc32_update_bytewise(util::kCrc32Init, data.data() + off, len);
    EXPECT_EQ(sliced, bytewise) << "off " << off << " len " << len;
  }
  // Mixed incremental chains: alternating sliced and bytewise updates over
  // a random chunking must land on the same final value — the two paths
  // share one CRC state contract.
  const std::uint32_t oneshot = util::crc32(data);
  std::uint32_t crc = util::kCrc32Init;
  std::size_t at = 0;
  bool use_sliced = false;
  while (at < data.size()) {
    const auto n = std::min<std::size_t>(
        static_cast<std::size_t>(rng.uniform_int(1, 4096)), data.size() - at);
    crc = use_sliced
              ? util::crc32_update(crc, data.data() + at, n)
              : util::crc32_update_bytewise(crc, data.data() + at, n);
    use_sliced = !use_sliced;
    at += n;
  }
  EXPECT_EQ(util::crc32_final(crc), oneshot);
}

TEST(Crc32, DetectsEverySingleBitFlip) {
  const std::string data = "checkpoint section payload";
  const std::uint32_t clean = util::crc32(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = data;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      EXPECT_NE(util::crc32(mutated), clean)
          << "byte " << byte << " bit " << bit;
    }
  }
}

// ---------------------------------------------------------------- contracts

TEST(Contracts, ExpectsThrowsLogicError) {
  auto bad = [] { RAB_EXPECTS(1 == 2); };
  EXPECT_THROW(bad(), LogicError);
}

TEST(Contracts, MessagesNameTheExpression) {
  try {
    RAB_EXPECTS(false && "context");
    FAIL() << "should have thrown";
  } catch (const LogicError& e) {
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
  }
}

}  // namespace
}  // namespace rab
