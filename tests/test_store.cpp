// Columnar rating-store tests: round-trip and zero-copy loads, commit-frame
// group atomicity under every possible torn-write/corrupt-byte/truncated
// tail (recovery must land exactly on a group boundary), sealed-segment
// strictness, tiered compaction across reopen, and the monitor-level
// property that a kill + mmap restart is byte-identical to an
// uninterrupted replay at 1 and 8 worker threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "detectors/online_monitor.hpp"
#include "rating/fair_generator.hpp"
#include "store/rating_store.hpp"
#include "store/segment.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace rab::store {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_("rab-store-scratch-" + name) {
    fs::remove_all(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Strictly increasing times so the time-merged tail() order is unique and
/// comparable against the append order.
std::vector<rating::Rating> synthetic_feed(std::size_t count,
                                           std::int64_t products,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<rating::Rating> rows;
  rows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    rating::Rating r;
    r.time = static_cast<double>(i) * 0.25 + rng.uniform(0.0, 0.2);
    r.value = rng.uniform(0.0, 5.0);
    r.product = ProductId(1 + rng.uniform_int(0, products - 1));
    r.rater = RaterId(rng.uniform_int(0, 500));
    r.unfair = rng.uniform(0.0, 1.0) < 0.1;
    rows.push_back(r);
  }
  return rows;
}

void expect_rows_equal(const std::vector<rating::Rating>& got,
                       const std::vector<rating::Rating>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "row " << i;
  }
}

TEST(Store, RoundTripSingleGroupLoadsZeroCopy) {
  ScratchDir dir("roundtrip");
  const std::vector<rating::Rating> feed = synthetic_feed(300, 3, 1);

  StoreConfig config;
  config.dir = dir.path();
  {
    RatingStore writer(config);
    for (const auto& r : feed) writer.append(r);
    writer.sync();
  }
  // load()/tail() serve the restart path: they read the mmapped extent
  // index, which is built at open — so read through a reopened store.
  RatingStore store(config);

  std::vector<rating::Rating> want_all = feed;  // already time-ordered
  expect_rows_equal(store.tail({}), want_all);

  for (const ProductId product : store.products()) {
    std::vector<rating::Rating> want;
    for (const auto& r : feed) {
      if (r.product == product) want.push_back(r);
    }
    ASSERT_EQ(store.rows(product), want.size());
    EXPECT_EQ(store.min_row(product), 0u);
    const rating::ProductRatings loaded =
        store.load(product, 0, want.size());
    // One group => one page per product => a single canonical extent, so
    // the load borrows the mapped columns instead of copying.
    EXPECT_TRUE(loaded.is_borrowed());
    expect_rows_equal(loaded.to_rows(), want);
  }
  // Out-of-range loads must fail loudly, not return partial data.
  const ProductId first = store.products().front();
  EXPECT_THROW(store.load(first, 0, store.rows(first) + 1), CorruptData);
}

TEST(Store, ReopenSeesExactlyTheSyncedRows) {
  ScratchDir dir("reopen");
  const std::vector<rating::Rating> feed = synthetic_feed(500, 4, 2);
  StoreConfig config;
  config.dir = dir.path();
  {
    RatingStore store(config);
    for (const auto& r : feed) store.append(r);
    store.sync();
  }
  RatingStore reopened(config);
  expect_rows_equal(reopened.tail({}), feed);
  EXPECT_EQ(reopened.buffered_ratings(), 0u);
}

/// Builds a store with one explicit flush (= one commit frame) per
/// `group` ratings and returns the per-flush cumulative totals — the only
/// states recovery is ever allowed to land on.
std::set<std::size_t> build_grouped_store(const std::string& dir,
                                          const std::vector<rating::Rating>& feed,
                                          std::size_t group) {
  StoreConfig config;
  config.dir = dir;
  config.group_ratings = feed.size() + 1;  // only explicit flushes commit
  RatingStore store(config);
  std::set<std::size_t> boundaries{0};
  for (std::size_t i = 0; i < feed.size(); ++i) {
    store.append(feed[i]);
    if ((i + 1) % group == 0 || i + 1 == feed.size()) {
      store.flush();
      boundaries.insert(i + 1);
    }
  }
  store.sync();
  return boundaries;
}

std::size_t total_rows(const RatingStore& store) {
  std::size_t total = 0;
  for (const ProductId p : store.products()) {
    total += static_cast<std::size_t>(store.rows(p) - store.min_row(p));
  }
  return total;
}

TEST(Store, EveryTruncatedTailRecoversToAGroupBoundary) {
  ScratchDir dir("truncate");
  const std::vector<rating::Rating> feed = synthetic_feed(600, 3, 3);
  const std::set<std::size_t> boundaries =
      build_grouped_store(dir.path(), feed, 50);

  fs::path segment;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    segment = entry.path();
  }
  ASSERT_FALSE(segment.empty());
  const auto file_size = static_cast<std::size_t>(fs::file_size(segment));
  const std::string bytes = [&] {
    std::ifstream in(segment, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();

  ScratchDir scratch("truncate-case");
  StoreConfig config;
  config.dir = scratch.path();
  std::size_t last_total = 0;
  for (std::size_t cut = 0; cut <= file_size;
       cut = std::min(cut + 37, file_size) + (cut == file_size ? 1 : 0)) {
    fs::create_directories(scratch.path());
    const fs::path copy = fs::path(scratch.path()) / segment.filename();
    {
      std::ofstream out(copy, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    {
      RatingStore recovered(config);
      const std::size_t total = total_rows(recovered);
      EXPECT_TRUE(boundaries.contains(total))
          << "cut at " << cut << " recovered " << total
          << " rows, not a commit boundary";
      // Monotone: more surviving bytes never means fewer recovered rows.
      EXPECT_GE(total, last_total) << "cut at " << cut;
      last_total = total;
      expect_rows_equal(
          recovered.tail({}),
          std::vector<rating::Rating>(feed.begin(),
                                      feed.begin() +
                                          static_cast<std::ptrdiff_t>(total)));
      // The reopened store must accept appends after recovery.
      recovered.append(feed[0]);
      recovered.flush();
    }
    fs::remove_all(scratch.path());
  }
  EXPECT_EQ(last_total, feed.size());  // the full file recovers everything
}

TEST(Store, CorruptBytesInTailSegmentRecoverToAGroupBoundary) {
  ScratchDir dir("corrupt");
  const std::vector<rating::Rating> feed = synthetic_feed(600, 3, 4);
  const std::set<std::size_t> boundaries =
      build_grouped_store(dir.path(), feed, 50);

  fs::path segment;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    segment = entry.path();
  }
  const std::string bytes = [&] {
    std::ifstream in(segment, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();

  ScratchDir scratch("corrupt-case");
  StoreConfig config;
  config.dir = scratch.path();
  for (std::size_t flip = 0; flip < bytes.size(); flip += 101) {
    fs::create_directories(scratch.path());
    const fs::path copy = fs::path(scratch.path()) / segment.filename();
    {
      std::string mutated = bytes;
      mutated[flip] = static_cast<char>(mutated[flip] ^ 0x5c);
      std::ofstream out(copy, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    {
      RatingStore recovered(config);
      const std::size_t total = total_rows(recovered);
      EXPECT_TRUE(boundaries.contains(total))
          << "flip at " << flip << " recovered " << total << " rows";
      // Whatever survives must be an exact prefix: a flipped bit may cost
      // committed groups (CRC rejects them) but never alter row payloads
      // silently — unless it landed in dead padding, where data is
      // untouched by construction.
      expect_rows_equal(
          recovered.tail({}),
          std::vector<rating::Rating>(feed.begin(),
                                      feed.begin() +
                                          static_cast<std::ptrdiff_t>(total)));
    }
    fs::remove_all(scratch.path());
  }
}

TEST(Store, CorruptSealedSegmentFailsLoudly) {
  ScratchDir dir("sealed");
  const std::vector<rating::Rating> feed = synthetic_feed(4000, 2, 5);
  StoreConfig config;
  config.dir = dir.path();
  config.segment_bytes = 8 * 1024;  // force several sealed segments
  config.group_ratings = 256;
  {
    RatingStore store(config);
    for (const auto& r : feed) store.append(r);
    store.sync();
  }
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    segments.push_back(entry.path());
  }
  std::sort(segments.begin(), segments.end());
  ASSERT_GE(segments.size(), 3u);

  // Flip a CRC-covered byte (inside the first frame header) of the first
  // — sealed, non-tail — segment: recovery must refuse the store rather
  // than silently dropping history from the middle of the log.
  std::fstream f(segments.front(),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(kSegmentHeaderBytes + 8);
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x10);
  f.seekp(kSegmentHeaderBytes + 8);
  f.write(&b, 1);
  f.close();
  EXPECT_THROW(RatingStore{config}, CorruptData);
}

TEST(Store, CompactionKeepsSuffixAndSurvivesReopen) {
  ScratchDir dir("compact");
  const std::vector<rating::Rating> feed = synthetic_feed(6000, 2, 6);
  StoreConfig config;
  config.dir = dir.path();
  config.segment_bytes = 8 * 1024;
  config.group_ratings = 256;
  config.consolidate_after = 2;

  std::map<ProductId, std::uint64_t> counts;
  std::map<ProductId, std::vector<rating::Rating>> per_product;
  for (const auto& r : feed) per_product[r.product].push_back(r);

  std::map<ProductId, std::uint64_t> watermark;
  {
    RatingStore store(config);
    for (const auto& r : feed) store.append(r);
    store.sync();
    const std::size_t before = store.segment_count();
    for (const auto& [product, rows] : per_product) {
      watermark[product] = rows.size() / 2;
    }
    store.compact(watermark);
    EXPECT_LT(store.segment_count(), before);

    for (const auto& [product, rows] : per_product) {
      EXPECT_LE(store.min_row(product), watermark[product]);
      EXPECT_EQ(store.rows(product), rows.size());
      const std::uint64_t from = store.min_row(product);
      const rating::ProductRatings suffix =
          store.load(product, from, rows.size());
      expect_rows_equal(
          suffix.to_rows(),
          std::vector<rating::Rating>(
              rows.begin() + static_cast<std::ptrdiff_t>(from), rows.end()));
      if (from > 0) {
        EXPECT_THROW(store.load(product, from - 1, rows.size()), CorruptData);
      }
    }
    store.sync();
    for (const auto& [product, rows] : per_product) {
      counts[product] = store.min_row(product);
    }
  }
  // Reopen: absolute row counters, compaction floors, and the surviving
  // suffix must all come back identical from the segment log alone.
  RatingStore reopened(config);
  for (const auto& [product, rows] : per_product) {
    EXPECT_EQ(reopened.min_row(product), counts[product]) << product.value();
    EXPECT_EQ(reopened.rows(product), rows.size());
    const std::uint64_t from = reopened.min_row(product);
    const rating::ProductRatings suffix =
        reopened.load(product, from, rows.size());
    expect_rows_equal(
        suffix.to_rows(),
        std::vector<rating::Rating>(
            rows.begin() + static_cast<std::ptrdiff_t>(from), rows.end()));
  }
}

// ---------------------------------------------------------------------------
// Session watermarks (kSession frames): the exactly-once resume protocol
// depends on marker durability ⟺ row durability, which holds because a
// batch's marker is flushed inside the same commit group as its rows.

TEST(Store, SessionMarkersCommitAtomicallyWithTheirBatch) {
  ScratchDir dir("session");
  const std::size_t kBatch = 16;
  const std::vector<rating::Rating> feed = synthetic_feed(256, 3, 8);
  StoreConfig config;
  config.dir = dir.path();
  config.group_ratings = 64;  // 4 batches + their markers per group
  config.marker_commits = true;
  {
    RatingStore store(config);
    std::uint64_t seq = 0;
    for (std::size_t at = 0; at < feed.size(); at += kBatch) {
      for (std::size_t i = 0; i < kBatch; ++i) store.append(feed[at + i]);
      store.mark_session(77, ++seq);
      const bool flushed = store.maybe_flush();
      // marker_commits: append() never auto-flushes, so commits happen
      // exactly at the group_ratings boundaries maybe_flush checks.
      EXPECT_EQ(flushed, seq % 4 == 0) << "batch " << seq;
    }
    store.sync();
  }
  {
    RatingStore reopened(config);
    ASSERT_TRUE(reopened.session_watermarks().contains(77));
    EXPECT_EQ(reopened.session_watermarks().at(77), feed.size() / kBatch);
  }

  // Truncation sweep: wherever the tail tears, the recovered watermark
  // must agree with the recovered rows — seq N durable iff batch N's
  // rows are. A mismatch in either direction breaks exactly-once (lost
  // acks or acked-but-lost rows).
  fs::path segment;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    segment = entry.path();
  }
  const std::string bytes = [&] {
    std::ifstream in(segment, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  ScratchDir scratch("session-cut");
  StoreConfig cut_config = config;
  cut_config.dir = scratch.path();
  for (std::size_t cut = 0; cut <= bytes.size();
       cut = std::min(cut + 41, bytes.size()) +
             (cut == bytes.size() ? 1 : 0)) {
    fs::create_directories(scratch.path());
    const fs::path copy = fs::path(scratch.path()) / segment.filename();
    {
      std::ofstream out(copy, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    {
      RatingStore recovered(cut_config);
      const std::size_t rows = total_rows(recovered);
      const std::uint64_t watermark =
          recovered.session_watermarks().contains(77)
              ? recovered.session_watermarks().at(77)
              : 0;
      EXPECT_EQ(watermark * kBatch, rows) << "cut at " << cut;
    }
    fs::remove_all(scratch.path());
  }
}

TEST(Store, SessionWatermarksSurviveSealCompactionAndReopen) {
  ScratchDir dir("session-compact");
  const std::vector<rating::Rating> feed = synthetic_feed(4000, 2, 9);
  StoreConfig config;
  config.dir = dir.path();
  config.segment_bytes = 8 * 1024;  // force seals mid-stream
  config.group_ratings = 100;
  config.consolidate_after = 2;
  config.marker_commits = true;
  std::map<std::uint64_t, std::uint64_t> expected;
  {
    RatingStore store(config);
    std::uint64_t seq = 0;
    for (std::size_t at = 0; at < feed.size(); at += 50) {
      for (std::size_t i = 0; i < 50; ++i) store.append(feed[at + i]);
      const std::uint64_t session = 1 + (at / 50) % 2;  // two interleaved
      expected[session] = ++seq;
      store.mark_session(session, seq);
      (void)store.maybe_flush();
    }
    store.sync();
    EXPECT_EQ(store.session_watermarks(), expected);

    // Compaction and consolidation rewrite segments; the watermarks ride
    // along (a restarted server must recover them from the survivors).
    std::map<ProductId, std::uint64_t> watermark;
    for (const ProductId p : store.products()) {
      watermark[p] = store.rows(p) / 2;
    }
    store.compact(watermark);
    store.sync();
    EXPECT_EQ(store.session_watermarks(), expected);
  }
  RatingStore reopened(config);
  EXPECT_EQ(reopened.session_watermarks(), expected);
}

// ---------------------------------------------------------------------------
// Monitor-level property: kill + mmap restart == uninterrupted replay.

std::vector<rating::Rating> monitor_feed() {
  rating::FairDataConfig config;
  config.product_count = 2;
  config.history_days = 150.0;
  config.seed = 7;
  rating::Dataset data = rating::FairDataGenerator(config).generate();
  Rng rng(9);
  std::vector<rating::Rating> burst;
  for (std::size_t i = 0; i < 50; ++i) {
    rating::Rating r;
    r.time = rng.uniform(60.0, 72.0);
    r.value = 0.0;
    r.rater = RaterId(1'000'000 + static_cast<std::int64_t>(i));
    r.product = ProductId(1);
    r.unfair = true;
    burst.push_back(r);
  }
  data = data.with_added(burst);
  std::vector<rating::Rating> all;
  for (ProductId id : data.product_ids()) {
    const auto rs = data.product(id).rows();
    all.insert(all.end(), rs.begin(), rs.end());
  }
  std::sort(all.begin(), all.end(), rating::ByTime{});
  return all;
}

detectors::OnlineConfig monitor_config() {
  detectors::OnlineConfig config;
  config.epoch_days = 10.0;
  config.trust_forgetting = 0.95;
  config.retention_days = 40.0;
  return config;
}

struct Observable {
  std::vector<detectors::Alarm> alarms;
  std::vector<detectors::OnlineEpochStats> epochs;
  std::vector<trust::RaterCounts> trust;
  std::size_t ingested = 0;
  std::size_t resident = 0;
  std::size_t compacted = 0;

  friend bool operator==(const Observable&, const Observable&) = default;
};

Observable observe(const detectors::OnlineMonitor& m) {
  return Observable{m.alarms(),           m.epoch_stats(),
                    m.trust().export_counts(), m.ingested(),
                    m.resident_ratings(), m.compacted_ratings()};
}

TEST(StoreMonitor, KillPlusMmapRestartMatchesReplayAt1And8Threads) {
  const std::vector<rating::Rating> feed = monitor_feed();
  const std::size_t original_threads = util::thread_count();

  Rng rng(20260808);
  std::vector<std::size_t> kill_points{0, 1, feed.size() - 1, feed.size()};
  while (kill_points.size() < 10) {
    kill_points.push_back(static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(feed.size()) - 1)));
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    util::set_thread_count(threads);
    // Ground truth: uninterrupted replay, no store attached.
    Observable reference;
    {
      detectors::OnlineMonitor plain(monitor_config());
      for (const auto& r : feed) plain.ingest(r);
      plain.flush();
      reference = observe(plain);
    }

    for (const std::size_t kill_at : kill_points) {
      ScratchDir ck("mon-ck-" + std::to_string(threads) + "-" +
                    std::to_string(kill_at));
      ScratchDir st("mon-st-" + std::to_string(threads) + "-" +
                    std::to_string(kill_at));
      detectors::OnlineConfig config = monitor_config();
      config.checkpoint_dir = ck.path();
      config.store_dir = st.path();
      {
        detectors::OnlineMonitor doomed(config);
        for (std::size_t i = 0; i < kill_at; ++i) doomed.ingest(feed[i]);
        // Killed here; only the checkpoint dir and segment log survive.
      }
      detectors::OnlineMonitor monitor(config);
      monitor.restore_from_store();
      for (std::size_t i = monitor.ingested(); i < feed.size(); ++i) {
        monitor.ingest(feed[i]);
      }
      monitor.flush();
      EXPECT_EQ(observe(monitor), reference)
          << "threads=" << threads << " kill_at=" << kill_at;
    }
  }
  util::set_thread_count(original_threads);
}

}  // namespace
}  // namespace rab::store
