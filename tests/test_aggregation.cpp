// Tests for the three aggregation schemes (SA, BF, P).
#include <gtest/gtest.h>

#include <cmath>

#include "aggregation/bf_scheme.hpp"
#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "rating/fair_generator.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab::aggregation {
namespace {

rating::Dataset fair_data(std::uint64_t seed = 1, std::size_t products = 2,
                          double days = 120.0) {
  rating::FairDataConfig config;
  config.product_count = products;
  config.history_days = days;
  config.seed = seed;
  return rating::FairDataGenerator(config).generate();
}

/// Unfair ratings: `count` raters rate `product` with `value` over
/// [begin, end), one rating each.
std::vector<rating::Rating> attack_ratings(ProductId product, double value,
                                           double begin, double end,
                                           std::size_t count,
                                           std::uint64_t seed = 9) {
  Rng rng(seed);
  std::vector<rating::Rating> out;
  for (std::size_t i = 0; i < count; ++i) {
    rating::Rating r;
    r.time = rng.uniform(begin, end);
    r.value = value;
    r.rater = RaterId(500'000 + static_cast<std::int64_t>(i));
    r.product = product;
    r.unfair = true;
    out.push_back(r);
  }
  return out;
}

double max_bin_shift(const AggregateSeries& fair, const AggregateSeries& hit,
                     ProductId product) {
  const ProductSeries& a = fair.of(product);
  const ProductSeries& b = hit.of(product);
  EXPECT_EQ(a.size(), b.size());
  double shift = 0.0;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (a[i].used == 0 || b[i].used == 0) continue;
    shift = std::max(shift, std::fabs(a[i].value - b[i].value));
  }
  return shift;
}

// ----------------------------------------------------------- SA scheme

TEST(SaScheme, BinMeansMatchManualComputation) {
  rating::Dataset data;
  for (int i = 0; i < 4; ++i) {
    rating::Rating r;
    r.time = static_cast<double>(i) * 10.0;  // days 0,10,20,30
    r.value = static_cast<double>(i + 1);    // 1,2,3,4
    r.rater = RaterId(i);
    r.product = ProductId(1);
    data.add(r);
  }
  const AggregateSeries series = SaScheme().aggregate(data, 30.0);
  const ProductSeries& points = series.of(ProductId(1));
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].value, 2.0);  // ratings 1,2,3
  EXPECT_EQ(points[0].used, 3u);
  EXPECT_DOUBLE_EQ(points[1].value, 4.0);  // rating 4
}

TEST(SaScheme, FollowsUnfairRatingsFully) {
  const rating::Dataset fair = fair_data(2);
  const auto attack =
      attack_ratings(ProductId(1), 0.0, 40.0, 60.0, 50);
  const rating::Dataset attacked = fair.with_added(attack);

  const SaScheme scheme;
  const double shift = max_bin_shift(scheme.aggregate(fair, 30.0),
                                     scheme.aggregate(attacked, 30.0),
                                     ProductId(1));
  // ~50 zeros against ~90 fair ratings near mean 4: the bin mean must drop
  // by more than 1 star.
  EXPECT_GT(shift, 1.0);
}

TEST(SaScheme, UntouchedProductUnchanged) {
  const rating::Dataset fair = fair_data(3);
  const auto attack = attack_ratings(ProductId(1), 0.0, 40.0, 60.0, 50);
  const rating::Dataset attacked = fair.with_added(attack);
  const SaScheme scheme;
  const double shift = max_bin_shift(scheme.aggregate(fair, 30.0),
                                     scheme.aggregate(attacked, 30.0),
                                     ProductId(2));
  EXPECT_DOUBLE_EQ(shift, 0.0);
}

TEST(SaScheme, UnknownProductInSeriesThrows) {
  const rating::Dataset fair = fair_data(4, 1);
  const AggregateSeries series = SaScheme().aggregate(fair, 30.0);
  EXPECT_THROW((void)series.of(ProductId(99)), InvalidArgument);
}

// ----------------------------------------------------------- BF scheme

TEST(BfScheme, RejectsBadConfig) {
  BfConfig config;
  config.quantile = 0.0;
  EXPECT_THROW(BfScheme{config}, Error);
  config = BfConfig{};
  config.max_rounds = 0;
  EXPECT_THROW(BfScheme{config}, Error);
}

TEST(BfScheme, FiltersRepeatedExtremeRatings) {
  // One rater spamming 0s against a consistent majority of 4s/5s gets
  // caught once their own opinion distribution is sharp enough.
  std::vector<rating::Rating> rs;
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    rating::Rating r;
    r.time = static_cast<double>(i) / 10.0;
    r.value = rng.bernoulli(0.5) ? 4.0 : 5.0;
    r.rater = RaterId(i);
    r.product = ProductId(1);
    rs.push_back(r);
  }
  for (int i = 0; i < 6; ++i) {
    rating::Rating r;
    r.time = 3.0 + static_cast<double>(i) / 10.0;
    r.value = 0.0;
    r.rater = RaterId(1000);  // same rater repeating
    r.product = ProductId(1);
    rs.push_back(r);
  }
  const BfScheme scheme;
  const std::vector<std::size_t> rejected = scheme.rejected_indices(rs);
  // All six 0-star ratings rejected, none of the majority.
  EXPECT_EQ(rejected.size(), 6u);
  for (std::size_t idx : rejected) {
    EXPECT_EQ(rs[idx].rater, RaterId(1000));
  }
}

TEST(BfScheme, SingleOutlierCaughtByTenPercentRule) {
  // One 0-star rating against a 4-star majority: under the operative 10%
  // rule the majority score falls outside even a single rating's beta.
  std::vector<rating::Rating> rs;
  for (int i = 0; i < 30; ++i) {
    rating::Rating r;
    r.time = static_cast<double>(i);
    r.value = 4.0;
    r.rater = RaterId(i);
    r.product = ProductId(1);
    rs.push_back(r);
  }
  rating::Rating outlier;
  outlier.time = 15.5;
  outlier.value = 0.0;
  outlier.rater = RaterId(999);
  outlier.product = ProductId(1);
  rs.push_back(outlier);
  const auto rejected = BfScheme().rejected_indices(rs);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rs[rejected[0]].rater, RaterId(999));
}

TEST(BfScheme, SingleOutlierSurvivesOnePercentRule) {
  // Under the strict 1% rule a lone rating's beta is too broad to convict
  // — the known weakness of majority-rule filtering.
  std::vector<rating::Rating> rs;
  for (int i = 0; i < 30; ++i) {
    rating::Rating r;
    r.time = static_cast<double>(i);
    r.value = 4.0;
    r.rater = RaterId(i);
    r.product = ProductId(1);
    rs.push_back(r);
  }
  rating::Rating outlier;
  outlier.time = 15.5;
  outlier.value = 0.0;
  outlier.rater = RaterId(999);
  outlier.product = ProductId(1);
  rs.push_back(outlier);
  BfConfig strict;
  strict.quantile = 0.01;
  EXPECT_TRUE(BfScheme(strict).rejected_indices(rs).empty());
}

TEST(BfScheme, ReducesExtremeAttackShift) {
  const rating::Dataset fair = fair_data(6);
  const auto attack = attack_ratings(ProductId(1), 0.0, 40.0, 60.0, 50);
  const rating::Dataset attacked = fair.with_added(attack);

  const SaScheme sa;
  const BfScheme bf;
  const double sa_shift = max_bin_shift(sa.aggregate(fair, 30.0),
                                        sa.aggregate(attacked, 30.0),
                                        ProductId(1));
  const double bf_shift = max_bin_shift(bf.aggregate(fair, 30.0),
                                        bf.aggregate(attacked, 30.0),
                                        ProductId(1));
  EXPECT_LT(bf_shift, sa_shift);
}

TEST(BfScheme, ModerateVarianceAttackSlipsThrough) {
  // The paper's Figure 4 finding: BF only removes large-bias tiny-variance
  // attacks. A moderate-bias attack passes the quantile test.
  const rating::Dataset fair = fair_data(7);
  Rng rng(31);
  std::vector<rating::Rating> attack;
  for (std::size_t i = 0; i < 50; ++i) {
    rating::Rating r;
    r.time = rng.uniform(40.0, 60.0);
    r.value = std::round(std::clamp(rng.gaussian(2.5, 0.8), 0.0, 5.0));
    r.rater = RaterId(500'000 + static_cast<std::int64_t>(i));
    r.product = ProductId(1);
    r.unfair = true;
    attack.push_back(r);
  }
  const rating::Dataset attacked = fair.with_added(attack);
  const BfScheme bf;
  const double bf_shift = max_bin_shift(bf.aggregate(fair, 30.0),
                                        bf.aggregate(attacked, 30.0),
                                        ProductId(1));
  EXPECT_GT(bf_shift, 0.3);  // attack substantially survives
}

// ----------------------------------------------------------- P scheme

TEST(PScheme, RejectsBadConfig) {
  PConfig config;
  config.passes = 0;
  EXPECT_THROW(PScheme{config}, Error);
}

TEST(PScheme, FairDataCloseToPlainAverage) {
  const rating::Dataset fair = fair_data(8);
  const AggregateSeries sa = SaScheme().aggregate(fair, 30.0);
  const AggregateSeries p = PScheme().aggregate(fair, 30.0);
  for (ProductId id : fair.product_ids()) {
    const ProductSeries& a = sa.of(id);
    const ProductSeries& b = p.of(id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].used == 0 || b[i].used == 0) continue;
      EXPECT_NEAR(a[i].value, b[i].value, 0.35)
          << "product " << id << " bin " << i;
    }
  }
}

TEST(PScheme, SuppressesNaiveDowngradeAttack) {
  const rating::Dataset fair = fair_data(9);
  const auto attack = attack_ratings(ProductId(1), 0.0, 40.0, 55.0, 50);
  const rating::Dataset attacked = fair.with_added(attack);

  const SaScheme sa;
  const PScheme p;
  const double sa_shift = max_bin_shift(sa.aggregate(fair, 30.0),
                                        sa.aggregate(attacked, 30.0),
                                        ProductId(1));
  const double p_shift = max_bin_shift(p.aggregate(fair, 30.0),
                                       p.aggregate(attacked, 30.0),
                                       ProductId(1));
  EXPECT_LT(p_shift, 0.5 * sa_shift);
}

TEST(PScheme, RemovedCountReported) {
  const rating::Dataset fair = fair_data(10);
  const auto attack = attack_ratings(ProductId(1), 0.0, 40.0, 55.0, 50);
  const rating::Dataset attacked = fair.with_added(attack);
  const AggregateSeries series = PScheme().aggregate(attacked, 30.0);
  std::size_t removed = 0;
  for (const AggregatePoint& point : series.of(ProductId(1))) {
    removed += point.removed;
  }
  EXPECT_GT(removed, 20u);
}

TEST(PScheme, DiagnosticsExposeTrustAndIntegration) {
  const rating::Dataset fair = fair_data(11, 1);
  const auto attack = attack_ratings(ProductId(1), 0.0, 40.0, 55.0, 40);
  const rating::Dataset attacked = fair.with_added(attack);

  PDiagnostics diagnostics;
  const PScheme p;
  (void)p.aggregate_detailed(attacked, 30.0, &diagnostics);
  ASSERT_TRUE(diagnostics.integration.contains(ProductId(1)));

  // Attackers' trust should end below honest raters' average trust.
  double attacker_trust = 0.0;
  for (int i = 0; i < 40; ++i) {
    attacker_trust += diagnostics.trust.trust(RaterId(500'000 + i));
  }
  attacker_trust /= 40.0;
  EXPECT_LT(attacker_trust, 0.45);
}

TEST(PScheme, SinglePassStillWorks) {
  PConfig config;
  config.passes = 1;
  const rating::Dataset fair = fair_data(12, 1);
  const auto attack = attack_ratings(ProductId(1), 0.0, 40.0, 55.0, 50);
  const rating::Dataset attacked = fair.with_added(attack);
  const PScheme p(config);
  const SaScheme sa;
  const double p_shift = max_bin_shift(p.aggregate(fair, 30.0),
                                       p.aggregate(attacked, 30.0),
                                       ProductId(1));
  const double sa_shift = max_bin_shift(sa.aggregate(fair, 30.0),
                                        sa.aggregate(attacked, 30.0),
                                        ProductId(1));
  EXPECT_LT(p_shift, sa_shift);
}

TEST(PScheme, EmptyDatasetYieldsEmptySeries) {
  rating::Dataset empty;
  const AggregateSeries series = PScheme().aggregate(empty, 30.0);
  EXPECT_TRUE(series.products.empty());
}

TEST(PScheme, FilterDisabledStillWeightsByTrust) {
  PConfig config;
  config.remove_suspicious = false;
  const rating::Dataset fair = fair_data(13, 1);
  const auto attack = attack_ratings(ProductId(1), 0.0, 40.0, 55.0, 50);
  const rating::Dataset attacked = fair.with_added(attack);
  const PScheme p(config);
  const SaScheme sa;
  const double p_shift = max_bin_shift(p.aggregate(fair, 30.0),
                                       p.aggregate(attacked, 30.0),
                                       ProductId(1));
  const double sa_shift = max_bin_shift(sa.aggregate(fair, 30.0),
                                        sa.aggregate(attacked, 30.0),
                                        ProductId(1));
  // Trust weighting alone (Eq. 7) already suppresses flagged attackers.
  EXPECT_LT(p_shift, sa_shift);
}

}  // namespace
}  // namespace rab::aggregation
