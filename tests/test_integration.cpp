// End-to-end integration tests reproducing the paper's headline shapes on
// a reduced scale (the full-scale versions live in bench/).
#include <gtest/gtest.h>

#include <algorithm>

#include "aggregation/bf_scheme.hpp"
#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "challenge/analysis.hpp"
#include "challenge/participants.hpp"
#include "core/attack_generator.hpp"

namespace rab {
namespace {

const challenge::Challenge& shared_challenge() {
  static const challenge::Challenge c =
      challenge::Challenge::make_default(2025);
  return c;
}

const std::vector<challenge::Submission>& shared_population() {
  static const std::vector<challenge::Submission> population =
      challenge::ParticipantPopulation(shared_challenge(), 17).generate(32);
  return population;
}

double max_mp(const std::vector<challenge::Submission>& population,
              const aggregation::AggregationScheme& scheme) {
  const challenge::Challenge& c = shared_challenge();
  double best = 0.0;
  for (const challenge::Submission& s : population) {
    best = std::max(best, c.evaluate(s, scheme).overall);
  }
  return best;
}

TEST(EndToEnd, PSchemeMaxMpWellBelowSa) {
  // Section V-A: under the P-scheme the attackers' best MP is a fraction
  // (the paper reports ~1/3) of what they achieve against the baselines.
  const aggregation::SaScheme sa;
  const aggregation::PScheme p;
  const double sa_best = max_mp(shared_population(), sa);
  const double p_best = max_mp(shared_population(), p);
  EXPECT_LT(p_best, 0.67 * sa_best);
}

TEST(EndToEnd, BfNoBetterThanSaAgainstSmartAttacks) {
  // Figure 4: BF only removes large-bias tiny-variance attacks. For the
  // defense-aware strategies, BF and SA are essentially identical.
  const challenge::Challenge& c = shared_challenge();
  const challenge::ParticipantPopulation population(c, 23);
  const aggregation::SaScheme sa;
  const aggregation::BfScheme bf;
  const auto smart =
      population.make(challenge::StrategyKind::kHighVariance, 0);
  const double sa_mp = c.evaluate(smart, sa).overall;
  const double bf_mp = c.evaluate(smart, bf).overall;
  EXPECT_NEAR(bf_mp, sa_mp, 0.15 * sa_mp + 0.05);
}

TEST(EndToEnd, BfFiltersNaiveExtremeAttack) {
  const challenge::Challenge& c = shared_challenge();
  const challenge::ParticipantPopulation population(c, 23);
  const aggregation::SaScheme sa;
  const aggregation::BfScheme bf;
  const auto naive =
      population.make(challenge::StrategyKind::kNaiveExtreme, 1);
  const double sa_mp = c.evaluate(naive, sa).overall;
  const double bf_mp = c.evaluate(naive, bf).overall;
  EXPECT_LT(bf_mp, 0.7 * sa_mp);
}

TEST(EndToEnd, AnalysisMarksTopTen) {
  const auto points = challenge::analyze_population(
      shared_challenge(), shared_population(), aggregation::SaScheme{});
  ASSERT_EQ(points.size(), shared_population().size());
  std::size_t amp = 0;
  std::size_t lmp = 0;
  for (const auto& point : points) {
    amp += point.amp ? 1 : 0;
    lmp += point.lmp ? 1 : 0;
  }
  EXPECT_EQ(amp, 10u);
  EXPECT_LE(lmp, 10u);
  EXPECT_GT(lmp, 0u);
}

TEST(EndToEnd, SaTopAttacksHaveLargeNegativeBiasSmallSpread) {
  // Figure 3's region R1: without a defense the winners slam the floor.
  const auto points = challenge::analyze_population(
      shared_challenge(), shared_population(), aggregation::SaScheme{});
  double bias_sum = 0.0;
  double sd_sum = 0.0;
  int n = 0;
  for (const auto& point : points) {
    if (!point.lmp) continue;
    bias_sum += point.bias;
    sd_sum += point.stddev;
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(bias_sum / n, -2.0);
  EXPECT_LT(sd_sum / n, 0.8);
}

TEST(EndToEnd, PTopAttacksCarryMoreVarianceThanSaTop) {
  // Figure 2 vs Figure 3: the P-scheme pushes winning attacks toward the
  // medium-bias / larger-variance region (R3).
  const auto sa_points = challenge::analyze_population(
      shared_challenge(), shared_population(), aggregation::SaScheme{});
  const auto p_points = challenge::analyze_population(
      shared_challenge(), shared_population(), aggregation::PScheme{});
  auto lmp_mean_sd = [](const std::vector<challenge::VarianceBiasPoint>& ps) {
    double sum = 0.0;
    int n = 0;
    for (const auto& p : ps) {
      if (p.lmp) {
        sum += p.stddev;
        ++n;
      }
    }
    return n == 0 ? 0.0 : sum / n;
  };
  EXPECT_GT(lmp_mean_sd(p_points), lmp_mean_sd(sa_points));
}

TEST(EndToEnd, ColorCodeMatchesPaper) {
  challenge::VarianceBiasPoint point;
  EXPECT_EQ(challenge::color_of(point), challenge::PointColor::kGrey);
  point.amp = true;
  EXPECT_EQ(challenge::color_of(point), challenge::PointColor::kGreen);
  point.lmp = true;
  EXPECT_EQ(challenge::color_of(point), challenge::PointColor::kRed);
  point.lmp = false;
  point.ump = true;
  EXPECT_EQ(challenge::color_of(point), challenge::PointColor::kBlue);
  point.amp = false;
  EXPECT_EQ(challenge::color_of(point), challenge::PointColor::kCyan);
  point.ump = false;
  point.lmp = true;
  EXPECT_EQ(challenge::color_of(point), challenge::PointColor::kPink);
}

TEST(EndToEnd, HeuristicCorrelationCompetitiveAgainstSignalDetectors) {
  // Figure 7's property: Procedure 3's anti-correlated ordering helps
  // against the signal-model detection pathway — the AR model-error
  // detector of the paper's precursor system [6]. Our reproduction
  // confirms the direction for the ARC+ME pathway; the histogram and
  // (median-baseline) mean-change detectors punish the ordering instead
  // (see EXPERIMENTS.md), so this test pins the signal-model
  // configuration.
  const challenge::Challenge& c = shared_challenge();
  aggregation::PConfig config;
  config.toggles.use_hc = false;
  config.toggles.use_mc = false;
  const aggregation::PScheme p(config);
  const core::AttackGenerator generator(c, 5);

  core::AttackProfile profile;
  profile.bias = -2.2;
  profile.sigma = 1.2;
  profile.duration_days = 45.0;

  profile.correlation = core::CorrelationMode::kHeuristic;
  const double heuristic_mp =
      c.evaluate(generator.generate(profile, 7), p).overall;

  profile.correlation = core::CorrelationMode::kRandom;
  double random_mp = 0.0;
  const int kOrders = 3;
  for (int i = 0; i < kOrders; ++i) {
    random_mp += c.evaluate(
        generator.generate(profile, 100 + static_cast<std::uint64_t>(i)), p)
        .overall;
  }
  random_mp /= kOrders;
  EXPECT_GE(heuristic_mp, 0.8 * random_mp);
}

TEST(EndToEnd, GeneratorOptimizationBeatsMostOfPopulation) {
  // Figure 5's claim, reduced: Procedure 2 against the P-scheme finds an
  // attack at least as strong as the bulk of the synthetic population.
  const challenge::Challenge& c = shared_challenge();
  const aggregation::PScheme p;
  const core::AttackGenerator generator(c, 5);

  core::AttackProfile timing;
  timing.duration_days = 45.0;

  core::RegionSearchOptions options;
  options.trials = 2;
  options.max_rounds = 2;
  const core::RegionSearchResult search =
      generator.optimize(p, options, timing);

  std::vector<double> mps;
  for (const challenge::Submission& s : shared_population()) {
    mps.push_back(c.evaluate(s, p).overall);
  }
  std::sort(mps.begin(), mps.end());
  const double p75 = mps[mps.size() * 3 / 4];
  EXPECT_GE(search.best_mp, p75);
}

}  // namespace
}  // namespace rab
