// Tests for AR modeling with the covariance method — the engine of the
// model-error detector.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "signal/ar.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab::signal {
namespace {

std::vector<double> white_noise(Rng& rng, std::size_t n, double mean,
                                double sigma) {
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.gaussian(mean, sigma));
  return xs;
}

std::vector<double> sinusoid(std::size_t n, double period, double mean,
                             double amplitude) {
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(mean + amplitude * std::sin(2.0 * std::numbers::pi *
                                             static_cast<double>(i) / period));
  }
  return xs;
}

TEST(ArFit, RejectsZeroOrder) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW(fit_ar(xs, 0), Error);
}

TEST(ArFit, TooShortWindowReportsWhite) {
  const std::vector<double> xs{1.0, 2.0};
  const ArFit fit = fit_ar(xs, 4);
  EXPECT_DOUBLE_EQ(fit.normalized_error, 1.0);
}

TEST(ArFit, FlatSignalReportsWhite) {
  const std::vector<double> xs(50, 4.0);
  const ArFit fit = fit_ar(xs, 4);
  EXPECT_DOUBLE_EQ(fit.normalized_error, 1.0);
  EXPECT_NEAR(fit.signal_power, 0.0, 1e-12);
}

TEST(ArFit, WhiteNoiseHasHighError) {
  Rng rng(1);
  const auto xs = white_noise(rng, 60, 4.0, 0.8);
  const double err = ar_model_error(xs, 4);
  EXPECT_GT(err, 0.6);  // AR can't explain white noise
}

TEST(ArFit, SinusoidHasLowError) {
  const auto xs = sinusoid(60, 12.0, 4.0, 1.0);
  const double err = ar_model_error(xs, 4);
  EXPECT_LT(err, 0.05);  // pure tone is perfectly AR-predictable
}

TEST(ArFit, Ar1ProcessRecovered) {
  // x(n) = 0.8 x(n-1) + e(n): the fit should find a_1 near -0.8 (in the
  // convention x(n) = -sum a_k x(n-k) + e) and explain most of the power.
  Rng rng(2);
  std::vector<double> xs{0.0};
  for (std::size_t i = 1; i < 400; ++i) {
    xs.push_back(0.8 * xs.back() + rng.gaussian(0.0, 0.3));
  }
  const ArFit fit = fit_ar(xs, 1);
  EXPECT_NEAR(fit.coefficients[0], -0.8, 0.08);
  // Residual power should be near the innovation variance 0.09, well below
  // the process variance 0.09 / (1 - 0.64) = 0.25.
  EXPECT_LT(fit.normalized_error, 0.55);
  EXPECT_GT(fit.normalized_error, 0.2);
}

TEST(ArFit, StructuredAttackLowersError) {
  // Mixture scenario the ME detector sees: honest noise plus a coordinated
  // block of identical low ratings — error drops vs pure noise.
  Rng rng(3);
  auto honest = white_noise(rng, 40, 4.0, 0.7);
  std::vector<double> attacked = honest;
  for (std::size_t i = 0; i < 20; ++i) attacked.push_back(1.0);

  const double honest_err = ar_model_error(honest, 4);
  const double attacked_err = ar_model_error(attacked, 4);
  EXPECT_LT(attacked_err, honest_err);
}

TEST(ArFit, ErrorIsScaleInvariant) {
  Rng rng(4);
  const auto xs = white_noise(rng, 80, 0.0, 1.0);
  std::vector<double> scaled;
  for (double x : xs) scaled.push_back(3.0 * x + 10.0);
  EXPECT_NEAR(ar_model_error(xs, 3), ar_model_error(scaled, 3), 1e-9);
}

TEST(ArFit, ErrorWithinUnitInterval) {
  Rng rng(5);
  for (int t = 0; t < 30; ++t) {
    const auto xs = white_noise(rng, 30 + t, 4.0, rng.uniform(0.1, 2.0));
    const double err = ar_model_error(xs, 4);
    EXPECT_GE(err, 0.0);
    EXPECT_LE(err, 1.0);
  }
}

TEST(ArFit, CoefficientCountMatchesOrder) {
  Rng rng(6);
  const auto xs = white_noise(rng, 50, 4.0, 0.5);
  for (std::size_t order : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(fit_ar(xs, order).coefficients.size(), order);
  }
}

TEST(ArFit, HigherOrderNeverWorseOnDeterministicSignal) {
  const auto xs = sinusoid(80, 16.0, 4.0, 1.0);
  const double err2 = ar_model_error(xs, 2);
  const double err6 = ar_model_error(xs, 6);
  EXPECT_LE(err6, err2 + 1e-9);
}


TEST(ArOrderSelection, RejectsZeroMaxOrder) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW(select_ar_order(xs, 0), Error);
}

TEST(ArOrderSelection, ShortWindowFallsBackToOne) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_EQ(select_ar_order(xs, 6), 1u);
}

TEST(ArOrderSelection, WhiteNoisePrefersLowOrder) {
  Rng rng(31);
  const auto xs = white_noise(rng, 200, 4.0, 0.8);
  EXPECT_LE(select_ar_order(xs, 8), 2u);
}

TEST(ArOrderSelection, Ar2ProcessPicksAtLeastTwo) {
  // x(n) = 1.2 x(n-1) - 0.5 x(n-2) + e(n): needs two lags to whiten.
  Rng rng(32);
  std::vector<double> xs{0.0, 0.0};
  for (int i = 2; i < 600; ++i) {
    xs.push_back(1.2 * xs[xs.size() - 1] - 0.5 * xs[xs.size() - 2] +
                 rng.gaussian(0.0, 0.3));
  }
  const std::size_t order = select_ar_order(xs, 8);
  EXPECT_GE(order, 2u);
  EXPECT_LE(order, 4u);
}

TEST(ArOrderSelection, SelectedOrderWithinBound) {
  Rng rng(33);
  const auto xs = white_noise(rng, 60, 4.0, 1.0);
  for (std::size_t max_order : {1u, 3u, 6u}) {
    EXPECT_LE(select_ar_order(xs, max_order), max_order);
    EXPECT_GE(select_ar_order(xs, max_order), 1u);
  }
}

/// Sweep: the error separates noise from tone across window sizes.
class ArWindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArWindowSweep, SeparatesToneFromNoise) {
  const std::size_t n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  const auto noise = white_noise(rng, n, 4.0, 0.8);
  const auto tone = sinusoid(n, 10.0, 4.0, 1.0);
  EXPECT_GT(ar_model_error(noise, 4), ar_model_error(tone, 4));
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, ArWindowSweep,
                         ::testing::Values(20u, 30u, 40u, 60u, 100u));

}  // namespace
}  // namespace rab::signal
