// Metrics registry and span tracer: exact concurrent sums, histogram
// bucket placement, scrape-while-writing safety (run under TSan via
// tools/tier1.sh --tsan), exposition formats, and trace nesting.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace {

using namespace rab;
namespace metrics = util::metrics;
namespace trace = util::trace;

/// Most assertions need live counters; compiled-out builds skip them but
/// still verify that the instrumentation API is callable.
#define RAB_REQUIRE_METRICS()                                       \
  if (!metrics::kCompiledIn) {                                      \
    GTEST_SKIP() << "instrumentation compiled out (RAB_NO_METRICS)"; \
  }                                                                 \
  metrics::set_enabled(true)

TEST(MetricsRegistry, CounterCountsExactly) {
  RAB_REQUIRE_METRICS();
  metrics::reset();
  auto& c = metrics::counter("test.exact");
  c.add();
  c.add(41);
  EXPECT_EQ(metrics::scrape().counter_value("test.exact"), 42u);
}

TEST(MetricsRegistry, SameNameReturnsSameHandle) {
  if (!metrics::kCompiledIn) GTEST_SKIP();
  EXPECT_EQ(&metrics::counter("test.same"), &metrics::counter("test.same"));
  EXPECT_EQ(&metrics::gauge("test.same_gauge"),
            &metrics::gauge("test.same_gauge"));
}

TEST(MetricsRegistry, TypeConflictThrowsLogicError) {
  if (!metrics::kCompiledIn) GTEST_SKIP();
  (void)metrics::counter("test.conflict");
  EXPECT_THROW((void)metrics::gauge("test.conflict"), LogicError);
  const double bounds_a[] = {1.0, 2.0};
  const double bounds_b[] = {1.0, 3.0};
  (void)metrics::histogram("test.conflict_hist", bounds_a);
  EXPECT_THROW((void)metrics::histogram("test.conflict_hist", bounds_b),
               LogicError);
  // Same bounds is a lookup, not a conflict.
  EXPECT_NO_THROW((void)metrics::histogram("test.conflict_hist", bounds_a));
}

TEST(MetricsRegistry, ConcurrentIncrementsFromManyThreadsSumExactly) {
  RAB_REQUIRE_METRICS();
  metrics::reset();
  auto& c = metrics::counter("test.concurrent");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::size_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  // Threads have exited: their shards folded into the residue, so the sum
  // is exact, not merely eventually-consistent.
  EXPECT_EQ(metrics::scrape().counter_value("test.concurrent"),
            kThreads * kPerThread);
}

TEST(MetricsRegistry, ScrapeWhileWritingIsSafeAndEventuallyExact) {
  RAB_REQUIRE_METRICS();
  metrics::reset();
  auto& c = metrics::counter("test.scrape_race");
  const double bounds[] = {0.5};
  auto& h = metrics::histogram("test.scrape_race_hist", bounds);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 20000;
  std::atomic<bool> done{false};
  // Scrape concurrently with the writers: every intermediate view must be
  // monotone, and the interleaving must be clean under TSan.
  std::thread scraper([&] {
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t now =
          metrics::scrape().counter_value("test.scrape_race");
      EXPECT_GE(now, last);
      last = now;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(static_cast<double>(i % 2));
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();
  const metrics::Snapshot snap = metrics::scrape();
  EXPECT_EQ(snap.counter_value("test.scrape_race"), kThreads * kPerThread);
  const auto* hist = snap.histogram_of("test.scrape_race_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, kThreads * kPerThread);
}

TEST(MetricsRegistry, HistogramBucketPlacementIsLowerBound) {
  RAB_REQUIRE_METRICS();
  metrics::reset();
  const double bounds[] = {1.0, 2.0, 5.0};
  auto& h = metrics::histogram("test.buckets", bounds);
  h.observe(0.0);  // le 1.0
  h.observe(1.0);  // le 1.0 (boundary lands in its own bucket)
  h.observe(1.5);  // le 2.0
  h.observe(2.0);  // le 2.0
  h.observe(5.0);  // le 5.0
  h.observe(7.0);  // +Inf overflow
  const metrics::Snapshot snap = metrics::scrape();
  const auto* hist = snap.histogram_of("test.buckets");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->buckets.size(), 4u);
  EXPECT_EQ(hist->buckets[0], 2u);
  EXPECT_EQ(hist->buckets[1], 2u);
  EXPECT_EQ(hist->buckets[2], 1u);
  EXPECT_EQ(hist->buckets[3], 1u);  // overflow
  EXPECT_EQ(hist->count, 6u);
  EXPECT_DOUBLE_EQ(hist->sum, 16.5);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  RAB_REQUIRE_METRICS();
  metrics::reset();
  auto& g = metrics::gauge("test.gauge");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(metrics::scrape().gauge_value("test.gauge"), 3.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(metrics::scrape().gauge_value("test.gauge"), 2.0);
}

TEST(MetricsRegistry, DisabledCollectionIsInert) {
  RAB_REQUIRE_METRICS();
  metrics::reset();
  auto& c = metrics::counter("test.disabled");
  c.add(5);
  metrics::set_enabled(false);
  c.add(100);
  metrics::set_enabled(true);
  // The disabled window recorded nothing; earlier values survived.
  EXPECT_EQ(metrics::scrape().counter_value("test.disabled"), 5u);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  RAB_REQUIRE_METRICS();
  auto& c = metrics::counter("test.reset");
  c.add(9);
  metrics::reset();
  EXPECT_EQ(metrics::scrape().counter_value("test.reset"), 0u);
  c.add(1);  // the old handle still works
  EXPECT_EQ(metrics::scrape().counter_value("test.reset"), 1u);
}

TEST(MetricsRegistry, ScopedTimerObservesElapsedSeconds) {
  RAB_REQUIRE_METRICS();
  metrics::reset();
  auto& h = metrics::histogram("test.timer",
                               metrics::latency_bounds_seconds());
  { const metrics::ScopedTimer timer(h); }
  const metrics::Snapshot snap = metrics::scrape();
  const auto* hist = snap.histogram_of("test.timer");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_GT(hist->sum, 0.0);
  EXPECT_LT(hist->sum, 10.0);
}

TEST(MetricsExposition, PrometheusTextFormat) {
  RAB_REQUIRE_METRICS();
  metrics::reset();
  metrics::counter("test.prom.count").add(7);
  metrics::gauge("test.prom.gauge").set(1.5);
  const double bounds[] = {1.0, 2.0};
  auto& h = metrics::histogram("test.prom.hist", bounds);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  std::ostringstream out;
  metrics::write_prometheus(out, metrics::scrape());
  const std::string text = out.str();
  // Sanitized names: dots to underscores, "rab_" prefix, counters _total.
  EXPECT_NE(text.find("# TYPE rab_test_prom_count_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("rab_test_prom_count_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("rab_test_prom_gauge 1.5\n"), std::string::npos);
  // Cumulative buckets: le="2" includes the le="1" observation.
  EXPECT_NE(text.find("rab_test_prom_hist_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rab_test_prom_hist_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rab_test_prom_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("rab_test_prom_hist_count 3\n"), std::string::npos);
}

TEST(MetricsExposition, JsonFormat) {
  RAB_REQUIRE_METRICS();
  metrics::reset();
  metrics::counter("test.json.count").add(3);
  const double bounds[] = {1.0};
  auto& h = metrics::histogram("test.json.hist", bounds);
  h.observe(0.5);
  h.observe(2.0);
  std::ostringstream out;
  metrics::write_json(out, metrics::scrape());
  const std::string text = out.str();
  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.back(), '}');
  EXPECT_NE(text.find("\"test.json.count\":3"), std::string::npos);
  EXPECT_NE(text.find("\"test.json.hist\":{\"count\":2,\"sum\":2.5,"
                      "\"le\":[1],\"counts\":[1,1]}"),
            std::string::npos);
}

TEST(Tracing, SpansNestAndCollectInStartOrder) {
  if (!metrics::kCompiledIn) GTEST_SKIP();
  trace::clear();
  trace::set_enabled(true);
  {
    RAB_TRACE_SPAN("test.outer");
    { RAB_TRACE_SPAN("test.inner"); }
    { RAB_TRACE_SPAN("test.inner2"); }
  }
  trace::set_enabled(false);
  const std::vector<trace::SpanRecord> spans = trace::collect();
  ASSERT_EQ(spans.size(), 3u);
  // Sorted by start: outer first, then its two children in order.
  EXPECT_EQ(spans[0].name, "test.outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].name, "test.inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "test.inner2");
  EXPECT_EQ(spans[2].depth, 1u);
  // Children are contained in the parent's [start, start+duration).
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_GE(spans[i].start_ns, spans[0].start_ns);
    EXPECT_LE(spans[i].start_ns + spans[i].duration_ns,
              spans[0].start_ns + spans[0].duration_ns);
    EXPECT_EQ(spans[i].tid, spans[0].tid);
  }
  trace::clear();
  EXPECT_TRUE(trace::collect().empty());
}

TEST(Tracing, DisabledSpansRecordNothing) {
  trace::clear();
  trace::set_enabled(false);
  { RAB_TRACE_SPAN("test.off"); }
  EXPECT_TRUE(trace::collect().empty());
}

TEST(Tracing, ChromeTraceJsonShape) {
  if (!metrics::kCompiledIn) GTEST_SKIP();
  trace::clear();
  trace::set_enabled(true);
  { RAB_TRACE_SPAN("test.chrome"); }
  trace::set_enabled(false);
  std::ostringstream out;
  trace::write_chrome_trace(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"test.chrome\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"pid\":1"), std::string::npos);
  trace::clear();
}

TEST(Tracing, SpansFromWorkerThreadsCarryDistinctTids) {
  if (!metrics::kCompiledIn) GTEST_SKIP();
  trace::clear();
  trace::set_enabled(true);
  std::thread a([] { RAB_TRACE_SPAN("test.tid"); });
  std::thread b([] { RAB_TRACE_SPAN("test.tid"); });
  a.join();
  b.join();
  trace::set_enabled(false);
  const auto spans = trace::collect();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
  trace::clear();
}

}  // namespace
