// SoA-vs-AoS equivalence suite for the column-oriented rating layout and
// the batched detector kernels (DESIGN.md §5g). The kernels promise:
//  - window indices identical to the per-point binary-search history;
//  - GLRT statistics within 1e-12 relative of the per-window scalar
//    reference in fast-FP mode, and the reference operation order (hence
//    deterministic, thread-count-independent alarms/trust) in strict mode;
//  - the row API (from_sorted / add / add_all / drop_prefix / overlay)
//    building identical streams no matter which path constructed them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "cluster/single_linkage.hpp"
#include "detectors/arc_detector.hpp"
#include "detectors/hc_detector.hpp"
#include "detectors/mc_detector.hpp"
#include "detectors/me_detector.hpp"
#include "detectors/online_monitor.hpp"
#include "rating/fair_generator.hpp"
#include "rating/overlay.hpp"
#include "signal/ar.hpp"
#include "signal/kernels.hpp"
#include "signal/windowing.hpp"
#include "stats/glrt.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace rab {
namespace {

rating::ProductRatings fair_stream(std::uint64_t seed,
                                   double days = 180.0) {
  rating::FairDataConfig config;
  config.product_count = 1;
  config.history_days = days;
  config.seed = seed;
  return rating::FairDataGenerator(config).generate_product(ProductId(1));
}

rating::ProductRatings with_burst(const rating::ProductRatings& fair,
                                  double value, double begin, double end,
                                  std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  rating::ProductRatings out = fair;
  for (std::size_t i = 0; i < count; ++i) {
    rating::Rating r;
    r.time = rng.uniform(begin, end);
    r.value = value;
    r.rater = RaterId(1'000'000 + static_cast<std::int64_t>(i));
    r.product = fair.product();
    r.unfair = true;
    out.add(r);
  }
  return out;
}

// |a - b| <= tol * max(1, |a|, |b|): absolute near zero, relative above 1.
void expect_close(double a, double b, double tol = 1e-12) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  EXPECT_LE(std::fabs(a - b), tol * scale) << a << " vs " << b;
}

TEST(SoaKernels, WindowBoundsMatchPerPointBinarySearch) {
  const auto stream = fair_stream(11);
  const auto times = stream.times();
  const std::size_t n = times.size();
  for (const signal::WindowSpec& spec :
       {signal::WindowSpec::by_duration(30.0),
        signal::WindowSpec::by_duration(0.5),
        signal::WindowSpec::by_count(21),
        signal::WindowSpec::by_count(4 * n)}) {
    std::vector<std::size_t> lo(n);
    std::vector<std::size_t> hi(n);
    signal::window_bounds(times, spec, lo, hi);
    for (std::size_t k = 0; k < n; ++k) {
      const signal::IndexRange ref = signal::window_around(times, k, spec);
      EXPECT_EQ(lo[k], ref.first) << "k=" << k;
      EXPECT_EQ(hi[k], ref.last) << "k=" << k;
    }
  }
}

TEST(SoaKernels, MeanGlrtCurveMatchesPerWindowScalarReference) {
  const auto stream = with_burst(fair_stream(12), 0.0, 60.0, 72.0, 40, 5);
  const auto times = stream.times();
  const auto values = stream.values();
  const double min_sigma = stats::kDefaultGlrtMinSigma;
  const stats::GaussianMeanGlrt glrt(/*threshold=*/8.0, min_sigma);
  for (const signal::WindowSpec& spec :
       {signal::WindowSpec::by_duration(30.0),
        signal::WindowSpec::by_count(30)}) {
    const std::vector<double> curve =
        signal::mean_glrt_curve(times, values, spec, min_sigma);
    ASSERT_EQ(curve.size(), times.size());
    for (std::size_t k = 0; k < times.size(); ++k) {
      const signal::IndexRange w = signal::window_around(times, k, spec);
      const auto [left, right] = signal::split_at(w, k);
      const std::vector<double> x1(values.begin() + left.first,
                                   values.begin() + left.last);
      const std::vector<double> x2(values.begin() + right.first,
                                   values.begin() + right.last);
      expect_close(curve[k], glrt.statistic(x1, x2));
    }
  }
}

TEST(SoaKernels, PoissonGlrtCurveMatchesStatisticFromSums) {
  // Integral counts exercise the log-table fast path; the fractional
  // variant forces the scalar fallback. Both must agree with the
  // reference statistic.
  Rng rng(77);
  std::vector<double> counts(200);
  for (double& c : counts) c = std::floor(rng.uniform(0.0, 9.0));
  std::vector<double> fractional = counts;
  fractional[50] += 0.25;

  for (const auto* cs : {&counts, &fractional}) {
    const std::size_t m = cs->size();
    const std::size_t half = 15;
    const std::vector<double> curve = signal::poisson_glrt_curve(*cs, half);
    ASSERT_EQ(curve.size(), m);
    EXPECT_EQ(curve[0], 0.0);
    std::vector<double> prefix(m + 1, 0.0);
    for (std::size_t i = 0; i < m; ++i) prefix[i + 1] = prefix[i] + (*cs)[i];
    for (std::size_t k = 1; k + 1 <= m; ++k) {
      const std::size_t d = std::min({half, k, m - k});
      const double days = static_cast<double>(d);
      const double s1 = prefix[k] - prefix[k - d];
      const double s2 = prefix[k + d] - prefix[k];
      expect_close(curve[k], stats::PoissonRateGlrt::statistic_from_sums(
                                 days, s1, days, s2));
      EXPECT_GE(curve[k], 0.0);
    }
  }
}

TEST(SoaKernels, BalanceCurveMatchesPerWindowTwoClusterSplit) {
  // The HC kernel promises bit-identity with the scalar reference in BOTH
  // FP modes (the indicator is pure sort-order + exact arithmetic), so the
  // comparisons below are EXPECT_EQ, not tolerance checks — this test runs
  // unchanged under the RAB_STRICT_FP CI leg.
  const auto stream = with_burst(fair_stream(31), 5.0, 40.0, 55.0, 45, 9);
  const auto values = stream.values();
  const std::size_t n = values.size();
  for (const std::size_t window_ratings :
       {std::size_t{4}, std::size_t{21}, std::size_t{40}, 2 * n}) {
    for (const double min_gap : {0.0, 0.75, 2.0}) {
      const std::vector<double> curve =
          signal::balance_curve(values, window_ratings, min_gap);
      ASSERT_EQ(curve.size(), n);
      const signal::WindowSpec spec =
          signal::WindowSpec::by_count(window_ratings);
      for (std::size_t k = 0; k < n; ++k) {
        const signal::IndexRange w =
            signal::window_around(stream.times(), k, spec);
        double ref = 0.0;
        if (w.size() >= 4) {
          const cluster::Split1d split = cluster::two_cluster_split(
              values.subspan(w.first, w.size()));
          if (split.gap >= min_gap) {
            const double n1 = static_cast<double>(split.left_count);
            const double n2 = static_cast<double>(split.right_count);
            ref = std::min(n1 / n2, n2 / n1);
          }
        }
        EXPECT_EQ(curve[k], ref)
            << "k=" << k << " window=" << window_ratings << " gap=" << min_gap;
      }
    }
  }
}

TEST(SoaKernels, ArErrorCurveMatchesPerWindowFitAr) {
  // The fused AR kernel replays fit_ar's exact accumulation order (and
  // stats::mean switches FP mode internally, same as the scalar path), so
  // equality is bitwise in both modes.
  const auto stream = with_burst(fair_stream(32), 0.0, 70.0, 82.0, 35, 4);
  const auto times = stream.times();
  const auto values = stream.values();
  for (const signal::WindowSpec& spec :
       {signal::WindowSpec::by_count(40),
        signal::WindowSpec::by_count(7),
        signal::WindowSpec::by_duration(20.0),
        signal::WindowSpec::by_duration(0.25)}) {
    for (const std::size_t order : {std::size_t{1}, std::size_t{4}}) {
      const std::vector<double> curve =
          signal::ar_error_curve(times, values, spec, order);
      ASSERT_EQ(curve.size(), times.size());
      for (std::size_t k = 0; k < times.size(); ++k) {
        const signal::IndexRange w = signal::window_around(times, k, spec);
        const double ref = signal::ar_model_error(
            values.subspan(w.first, w.size()), order);
        EXPECT_EQ(curve[k], ref) << "k=" << k << " order=" << order;
      }
    }
  }
}

TEST(SoaStreams, ConstructionPathsBuildIdenticalColumns) {
  const auto reference = fair_stream(13);
  std::vector<rating::Rating> rows = reference.to_rows();

  // from_sorted on the already-ordered rows.
  const rating::ProductRatings sorted =
      rating::ProductRatings::from_sorted(reference.product(), rows);

  // add() in shuffled order.
  std::vector<rating::Rating> shuffled = rows;
  Rng rng(99);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<std::size_t>(
                  rng.uniform(0.0, static_cast<double>(i)))]);
  }
  rating::ProductRatings added(reference.product());
  for (const rating::Rating& r : shuffled) added.add(r);

  // add_all() of the shuffled batch.
  rating::ProductRatings batched(reference.product());
  batched.add_all(shuffled);

  for (const rating::ProductRatings* s :
       {&sorted, &std::as_const(added), &std::as_const(batched)}) {
    ASSERT_EQ(s->size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(s->times()[i], reference.times()[i]);
      EXPECT_EQ(s->values()[i], reference.values()[i]);
      EXPECT_EQ(s->raters()[i], reference.raters()[i]);
      EXPECT_EQ(s->unfair_flags()[i], reference.unfair_flags()[i]);
    }
  }
}

TEST(SoaStreams, DropPrefixMatchesSuffixRebuild) {
  auto stream = fair_stream(14);
  const std::vector<rating::Rating> rows = stream.to_rows();
  const std::size_t drop = rows.size() / 3;
  stream.drop_prefix(drop);
  const rating::ProductRatings rebuilt = rating::ProductRatings::from_sorted(
      stream.product(),
      std::vector<rating::Rating>(rows.begin() + drop, rows.end()));
  ASSERT_EQ(stream.size(), rebuilt.size());
  EXPECT_EQ(stream.to_rows(), rebuilt.to_rows());
}

TEST(SoaStreams, OverlayMatchesMaterializedMerge) {
  const auto base = fair_stream(15);
  std::vector<rating::Rating> extras;
  Rng rng(7);
  for (std::size_t i = 0; i < 40; ++i) {
    rating::Rating r;
    r.time = rng.uniform(0.0, 180.0);
    r.value = 0.0;
    r.rater = RaterId(2'000'000 + static_cast<std::int64_t>(i));
    r.product = base.product();
    r.unfair = true;
    extras.push_back(r);
  }
  rating::OverlayProduct overlay(&base, base.product(), extras);
  rating::ProductRatings merged = base;
  merged.add_all(extras);

  ASSERT_EQ(overlay.size(), merged.size());
  std::size_t walked = 0;
  overlay.for_each([&](const rating::Rating& r) {
    EXPECT_EQ(r, merged.at(walked)) << "merged position " << walked;
    ++walked;
  });
  EXPECT_EQ(walked, merged.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(overlay.at(i), merged.at(i));
  }
}

TEST(SoaDetectors, CurvesIdenticalAcrossConstructionPaths) {
  const auto attacked = with_burst(fair_stream(16), 0.0, 60.0, 72.0, 50, 3);
  const rating::ProductRatings rebuilt = rating::ProductRatings::from_sorted(
      attacked.product(), attacked.to_rows());

  const detectors::MeanChangeDetector mc;
  const detectors::ArrivalRateDetector larc(detectors::ArcConfig{},
                                            detectors::ArcMode::kLow);
  const detectors::HistogramDetector hc;
  const detectors::ModelErrorDetector me;

  const auto expect_same = [](const detectors::DetectionResult& a,
                              const detectors::DetectionResult& b) {
    ASSERT_EQ(a.curve.size(), b.curve.size());
    for (std::size_t i = 0; i < a.curve.size(); ++i) {
      EXPECT_EQ(a.curve[i].time, b.curve[i].time);
      EXPECT_EQ(a.curve[i].value, b.curve[i].value);
    }
    ASSERT_EQ(a.suspicious.size(), b.suspicious.size());
    for (std::size_t i = 0; i < a.suspicious.size(); ++i) {
      EXPECT_EQ(a.suspicious[i].begin, b.suspicious[i].begin);
      EXPECT_EQ(a.suspicious[i].end, b.suspicious[i].end);
    }
  };
  expect_same(mc.detect(attacked), mc.detect(rebuilt));
  expect_same(larc.detect(attacked), larc.detect(rebuilt));
  expect_same(hc.detect(attacked), hc.detect(rebuilt));
  expect_same(me.detect(attacked), me.detect(rebuilt));
}

// Full streaming pipeline determinism: identical feeds must produce
// byte-identical alarms and identical per-rater trust, at every
// RAB_THREADS (tools/tier1.sh and the strict-FP CI leg re-run this binary
// under RAB_THREADS=8; the parallel epoch analysis reduces serially in
// product order, so thread count can't reorder evidence).
TEST(SoaDetectors, MonitorAlarmsAndTrustReproducible) {
  const auto run = [] {
    rating::FairDataConfig config;
    config.product_count = 3;
    config.history_days = 150.0;
    config.seed = 21;
    rating::Dataset data = rating::FairDataGenerator(config).generate();

    std::vector<rating::Rating> all;
    for (ProductId id : data.product_ids()) {
      const auto rs = data.product(id).rows();
      all.insert(all.end(), rs.begin(), rs.end());
    }
    Rng rng(5);
    for (std::size_t i = 0; i < 60; ++i) {
      rating::Rating r;
      r.time = rng.uniform(60.0, 72.0);
      r.value = 0.0;
      r.rater = RaterId(1'000'000 + static_cast<std::int64_t>(i));
      r.product = ProductId(1);
      r.unfair = true;
      all.push_back(r);
    }
    std::sort(all.begin(), all.end(), rating::ByTime{});

    detectors::OnlineConfig config_online;
    config_online.epoch_days = 10.0;
    detectors::OnlineMonitor monitor(config_online);
    monitor.ingest(all);
    monitor.flush();
    // Sample trust while the monitor (which owns the TrustManager the
    // lookup closure points into) is still alive.
    const detectors::TrustLookup lookup = monitor.trust().lookup();
    std::vector<double> trust;
    for (std::int64_t rater = 0; rater < 1'000'060; rater += 997) {
      trust.push_back(lookup(RaterId(rater)));
    }
    return std::make_pair(monitor.alarms(), trust);
  };

  const auto [alarms_a, trust_a] = run();
  const auto [alarms_b, trust_b] = run();
  EXPECT_FALSE(alarms_a.empty());  // the burst must actually alarm
  EXPECT_EQ(alarms_a, alarms_b);
  EXPECT_EQ(trust_a, trust_b);
}

TEST(SoaKernels, StrictModeReportsCompiledDefaultWithoutEnvOverride) {
  // The strict/fast switch is latched once per process; this just pins the
  // API so both CI legs (default and RAB_STRICT_FP=ON) link and query it.
  const bool strict = simd::strict_fp();
  EXPECT_TRUE(strict == true || strict == false);
}

}  // namespace
}  // namespace rab
