// Interface contract tests, parameterized over every aggregation scheme:
// invariants any AggregationScheme implementation must satisfy, so a new
// defense plugged into the library gets checked for free.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "aggregation/bf_scheme.hpp"
#include "aggregation/entropy_scheme.hpp"
#include "aggregation/factory.hpp"
#include "aggregation/median_scheme.hpp"
#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "rating/fair_generator.hpp"
#include "util/rng.hpp"

namespace rab::aggregation {
namespace {

using SchemeFactory = std::function<std::unique_ptr<AggregationScheme>()>;

struct SchemeCase {
  const char* name;
  SchemeFactory make;
  /// Allowed drift of an untouched product's aggregate when another
  /// product is attacked. Exactly 0 for per-product schemes; the P-scheme
  /// has *global* rater trust, so fair raters swept up in the attacked
  /// product's suspicious intervals carry slightly different weights
  /// everywhere (trust contagion) — bounded, but not zero.
  double cross_product_tolerance = 1e-9;
};

class SchemeContract : public ::testing::TestWithParam<SchemeCase> {
 protected:
  static rating::Dataset fair_data(std::uint64_t seed = 3) {
    rating::FairDataConfig config;
    config.product_count = 3;
    config.history_days = 120.0;
    config.seed = seed;
    return rating::FairDataGenerator(config).generate();
  }

  static std::vector<rating::Rating> attack_on(ProductId product) {
    Rng rng(77);
    std::vector<rating::Rating> out;
    for (int i = 0; i < 30; ++i) {
      rating::Rating r;
      r.time = rng.uniform(40.0, 70.0);
      r.value = 0.0;
      r.rater = RaterId(900'000 + i);
      r.product = product;
      r.unfair = true;
      out.push_back(r);
    }
    return out;
  }
};

TEST_P(SchemeContract, NameIsNonEmpty) {
  EXPECT_FALSE(GetParam().make()->name().empty());
}

TEST_P(SchemeContract, Deterministic) {
  const auto scheme = GetParam().make();
  const rating::Dataset data = fair_data();
  const AggregateSeries a = scheme->aggregate(data, 30.0);
  const AggregateSeries b = scheme->aggregate(data, 30.0);
  ASSERT_EQ(a.products.size(), b.products.size());
  for (const auto& [id, points] : a.products) {
    const ProductSeries& other = b.of(id);
    ASSERT_EQ(points.size(), other.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_DOUBLE_EQ(points[i].value, other[i].value);
      EXPECT_EQ(points[i].used, other[i].used);
      EXPECT_EQ(points[i].removed, other[i].removed);
    }
  }
}

TEST_P(SchemeContract, CoversEveryProduct) {
  const auto scheme = GetParam().make();
  const rating::Dataset data = fair_data();
  const AggregateSeries series = scheme->aggregate(data, 30.0);
  for (ProductId id : data.product_ids()) {
    EXPECT_NO_THROW((void)series.of(id));
  }
}

TEST_P(SchemeContract, BinsTileTheSpan) {
  const auto scheme = GetParam().make();
  const rating::Dataset data = fair_data();
  const Interval span = data.span();
  const AggregateSeries series = scheme->aggregate(data, 30.0);
  for (ProductId id : data.product_ids()) {
    const ProductSeries& points = series.of(id);
    ASSERT_FALSE(points.empty());
    EXPECT_DOUBLE_EQ(points.front().bin.begin, span.begin);
    EXPECT_NEAR(points.back().bin.end, span.end, 1e-9);
    for (std::size_t i = 1; i < points.size(); ++i) {
      EXPECT_DOUBLE_EQ(points[i].bin.begin, points[i - 1].bin.end);
      EXPECT_NEAR(points[i - 1].bin.length(), 30.0, 1e-9);
    }
  }
}

TEST_P(SchemeContract, ValuesOnTheRatingScale) {
  const auto scheme = GetParam().make();
  const rating::Dataset data =
      fair_data().with_added(attack_on(ProductId(1)));
  const AggregateSeries series = scheme->aggregate(data, 30.0);
  for (const auto& [id, points] : series.products) {
    for (const AggregatePoint& p : points) {
      if (p.used == 0) continue;
      EXPECT_GE(p.value, rating::kMinRating);
      EXPECT_LE(p.value, rating::kMaxRating);
      EXPECT_TRUE(std::isfinite(p.value));
    }
  }
}

TEST_P(SchemeContract, UsedPlusRemovedBoundedByBinSize) {
  const auto scheme = GetParam().make();
  const rating::Dataset data =
      fair_data().with_added(attack_on(ProductId(1)));
  const AggregateSeries series = scheme->aggregate(data, 30.0);
  for (ProductId id : data.product_ids()) {
    const rating::ProductRatings& stream = data.product(id);
    for (const AggregatePoint& p : series.of(id)) {
      const std::size_t in_bin = stream.in_interval(p.bin).size();
      EXPECT_LE(p.used + p.removed, in_bin)
          << GetParam().name << " product " << id;
      EXPECT_LE(p.used, in_bin);
    }
  }
}

TEST_P(SchemeContract, UntouchedProductUnaffectedByAttackElsewhere) {
  const auto scheme = GetParam().make();
  const rating::Dataset clean = fair_data();
  const rating::Dataset dirty = clean.with_added(attack_on(ProductId(1)));
  const AggregateSeries a = scheme->aggregate(clean, 30.0);
  const AggregateSeries b = scheme->aggregate(dirty, 30.0);
  // Product 3 never sees an unfair rating; its aggregate must not move
  // (the attackers rate only product 1, so even trust-based schemes have
  // no attacker ratings to reweigh on product 3).
  const ProductSeries& pa = a.of(ProductId(3));
  const ProductSeries& pb = b.of(ProductId(3));
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].used == 0 || pb[i].used == 0) continue;
    EXPECT_NEAR(pa[i].value, pb[i].value,
                GetParam().cross_product_tolerance);
  }
}

TEST_P(SchemeContract, EmptyDatasetYieldsEmptySeries) {
  const auto scheme = GetParam().make();
  rating::Dataset empty;
  const AggregateSeries series = scheme->aggregate(empty, 30.0);
  EXPECT_TRUE(series.products.empty());
}

TEST_P(SchemeContract, SingleRatingDataset) {
  const auto scheme = GetParam().make();
  rating::Dataset data;
  rating::Rating r;
  r.time = 1.0;
  r.value = 4.0;
  r.rater = RaterId(1);
  r.product = ProductId(1);
  data.add(r);
  const AggregateSeries series = scheme->aggregate(data, 30.0);
  const ProductSeries& points = series.of(ProductId(1));
  ASSERT_EQ(points.size(), 1u);
  if (points[0].used > 0) {
    EXPECT_DOUBLE_EQ(points[0].value, 4.0);
  }
}

TEST_P(SchemeContract, FairAggregateTracksFairMean) {
  const auto scheme = GetParam().make();
  const rating::Dataset data = fair_data(9);
  const AggregateSeries series = scheme->aggregate(data, 30.0);
  for (ProductId id : data.product_ids()) {
    for (const AggregatePoint& p : series.of(id)) {
      if (p.used < 10) continue;
      // Clean data: every scheme's aggregate should sit near the 4-star
      // fair mean (median can sit half a star off on discrete data).
      EXPECT_NEAR(p.value, 4.0, 0.8) << GetParam().name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeContract,
    ::testing::Values(
        SchemeCase{"SA", [] { return std::unique_ptr<AggregationScheme>(
                                  std::make_unique<SaScheme>()); }},
        SchemeCase{"BF", [] { return std::unique_ptr<AggregationScheme>(
                                  std::make_unique<BfScheme>()); }},
        SchemeCase{"P",
                   [] {
                     return std::unique_ptr<AggregationScheme>(
                         std::make_unique<PScheme>());
                   },
                   /*cross_product_tolerance=*/0.2},
        SchemeCase{"MED", [] { return std::unique_ptr<AggregationScheme>(
                                   std::make_unique<MedianScheme>()); }},
        SchemeCase{"ENT", [] { return std::unique_ptr<AggregationScheme>(
                                   std::make_unique<EntropyScheme>()); }},
        // RV shares per-bin voter weights across products, so an attack on
        // one product legitimately nudges its raters' weight elsewhere —
        // same relaxed cross-product tolerance as P.
        SchemeCase{"RV", [] { return make_scheme("RV"); },
                   /*cross_product_tolerance=*/0.2},
        SchemeCase{"XL", [] { return make_scheme("XL"); }},
        // The guard finds no squads in the contract datasets (single-
        // product footprints never reach min_overlap), so SA+CG must be
        // contract-clean exactly like SA.
        SchemeCase{"SA_CG", [] { return make_scheme("SA+CG"); }}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace rab::aggregation
