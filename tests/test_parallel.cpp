// Tests for the parallel execution engine: parallel_for semantics and the
// bit-identical-at-any-thread-count determinism contract of the hot paths
// wired onto it (P-scheme aggregation, region search, attack generator).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "challenge/challenge.hpp"
#include "core/attack_generator.hpp"
#include "core/region_search.hpp"
#include "rating/fair_generator.hpp"
#include "util/parallel.hpp"

namespace rab {
namespace {

/// Restores the pool to a single worker when a test scope ends, so thread
/// counts never leak between tests.
struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(1); }
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const ThreadCountGuard guard;
  for (std::size_t threads : {1u, 2u, 8u}) {
    util::set_thread_count(threads);
    std::vector<int> hits(1000, 0);
    util::parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelFor, ResultsIdenticalAcrossThreadCounts) {
  const ThreadCountGuard guard;
  auto run = [](std::size_t threads) {
    util::set_thread_count(threads);
    std::vector<double> out(513);
    util::parallel_for(out.size(), [&](std::size_t i) {
      out[i] = std::sin(static_cast<double>(i)) * 1e6;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ParallelFor, EmptyAndTinyLoops) {
  const ThreadCountGuard guard;
  util::set_thread_count(4);
  util::parallel_for(0, [](std::size_t) { FAIL(); });
  std::atomic<int> calls{0};
  util::parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  const ThreadCountGuard guard;
  util::set_thread_count(4);
  EXPECT_THROW(util::parallel_for(100,
                                  [](std::size_t i) {
                                    if (i == 37) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
               std::runtime_error);
}

TEST(ParallelFor, NestedLoopsDoNotDeadlock) {
  const ThreadCountGuard guard;
  util::set_thread_count(4);
  std::vector<double> out(16, 0.0);
  util::parallel_for(out.size(), [&](std::size_t i) {
    double acc = 0.0;
    // Nested call: runs inline on whichever thread owns index i.
    util::parallel_for(64, [&](std::size_t j) {
      acc += static_cast<double>(i * j);
    });
    out[i] = acc;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * (63.0 * 64.0 / 2.0));
  }
}

rating::Dataset small_dataset() {
  rating::FairDataConfig config;
  config.product_count = 5;
  config.history_days = 90.0;
  return rating::FairDataGenerator(config).generate();
}

void expect_identical(const aggregation::AggregateSeries& a,
                      const aggregation::AggregateSeries& b) {
  ASSERT_EQ(a.products.size(), b.products.size());
  for (const auto& [id, series] : a.products) {
    const aggregation::ProductSeries& other = b.of(id);
    ASSERT_EQ(series.size(), other.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
      EXPECT_EQ(series[i].value, other[i].value);  // bit-identical
      EXPECT_EQ(series[i].used, other[i].used);
      EXPECT_EQ(series[i].removed, other[i].removed);
    }
  }
}

TEST(ParallelDeterminism, PSchemeAggregateBitIdentical) {
  const ThreadCountGuard guard;
  const rating::Dataset data = small_dataset();
  const aggregation::PScheme p;

  util::set_thread_count(1);
  const aggregation::AggregateSeries serial = p.aggregate(data, 30.0);
  util::set_thread_count(8);
  const aggregation::AggregateSeries parallel = p.aggregate(data, 30.0);
  expect_identical(serial, parallel);
}

core::RegionSearchResult run_region_search() {
  core::RegionSearchOptions options;
  options.trials = 6;
  options.max_rounds = 4;
  // A deterministic pure function of (bias, sigma, trial) stands in for
  // the MP evaluation; real evaluators derive their RNG from `trial`.
  return core::region_search(
      options, [](double bias, double sigma, std::size_t trial) {
        return std::abs(std::sin(bias * 3.1 + sigma * 1.7 +
                                 static_cast<double>(trial) * 0.013));
      });
}

TEST(ParallelDeterminism, RegionSearchBitIdentical) {
  const ThreadCountGuard guard;
  util::set_thread_count(1);
  const core::RegionSearchResult serial = run_region_search();
  util::set_thread_count(8);
  const core::RegionSearchResult parallel = run_region_search();

  EXPECT_EQ(serial.best_bias, parallel.best_bias);
  EXPECT_EQ(serial.best_sigma, parallel.best_sigma);
  EXPECT_EQ(serial.best_mp, parallel.best_mp);
  ASSERT_EQ(serial.rounds.size(), parallel.rounds.size());
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    EXPECT_EQ(serial.rounds[i].best_mp, parallel.rounds[i].best_mp);
    EXPECT_EQ(serial.rounds[i].bias.lo, parallel.rounds[i].bias.lo);
    EXPECT_EQ(serial.rounds[i].bias.hi, parallel.rounds[i].bias.hi);
    EXPECT_EQ(serial.rounds[i].sigma.lo, parallel.rounds[i].sigma.lo);
    EXPECT_EQ(serial.rounds[i].sigma.hi, parallel.rounds[i].sigma.hi);
  }
}

TEST(ParallelDeterminism, RegionSearchTrialIdsAreConsecutive) {
  const ThreadCountGuard guard;
  util::set_thread_count(8);
  core::RegionSearchOptions options;
  options.trials = 5;
  options.max_rounds = 3;

  std::mutex mutex;
  std::set<std::size_t> seen;
  core::region_search(options,
                      [&](double, double, std::size_t trial) {
                        const std::lock_guard<std::mutex> lock(mutex);
                        EXPECT_TRUE(seen.insert(trial).second);
                        return 0.5;
                      });
  // 3 rounds x grid^2 (= 4) x 5 trials, numbered exactly 0..n-1.
  ASSERT_EQ(seen.size(), 60u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 59u);
}

TEST(ParallelDeterminism, AttackGeneratorBitIdentical) {
  const ThreadCountGuard guard;
  const challenge::Challenge challenge =
      challenge::Challenge::make_default(/*seed=*/99);
  const core::AttackGenerator generator(challenge, 1234);
  const aggregation::SaScheme sa;

  core::AttackProfile timing;
  timing.duration_days = 30.0;
  timing.offset_days = 5.0;
  core::RegionSearchOptions options;
  options.trials = 3;
  options.max_rounds = 2;

  util::set_thread_count(1);
  const core::RegionSearchResult serial_search =
      generator.optimize(sa, options, timing);
  const challenge::Submission serial_best =
      generator.realize_best(sa, serial_search, timing, /*trials=*/4);

  util::set_thread_count(8);
  const core::RegionSearchResult parallel_search =
      generator.optimize(sa, options, timing);
  const challenge::Submission parallel_best =
      generator.realize_best(sa, parallel_search, timing, /*trials=*/4);

  EXPECT_EQ(serial_search.best_bias, parallel_search.best_bias);
  EXPECT_EQ(serial_search.best_sigma, parallel_search.best_sigma);
  EXPECT_EQ(serial_search.best_mp, parallel_search.best_mp);

  ASSERT_EQ(serial_best.ratings.size(), parallel_best.ratings.size());
  for (std::size_t i = 0; i < serial_best.ratings.size(); ++i) {
    EXPECT_EQ(serial_best.ratings[i].time, parallel_best.ratings[i].time);
    EXPECT_EQ(serial_best.ratings[i].value, parallel_best.ratings[i].value);
    EXPECT_EQ(serial_best.ratings[i].rater, parallel_best.ratings[i].rater);
    EXPECT_EQ(serial_best.ratings[i].product,
              parallel_best.ratings[i].product);
  }
}

}  // namespace
}  // namespace rab
