// Overlay-vs-copy equivalence: the zero-copy DatasetOverlay path must be
// bit-identical to Dataset::with_added for every accessor, every scheme,
// and every thread count — plus the detector-result cache's invalidation
// rules and the identity()-keyed fair-baseline cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "aggregation/bf_scheme.hpp"
#include "aggregation/entropy_scheme.hpp"
#include "aggregation/factory.hpp"
#include "aggregation/median_scheme.hpp"
#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "challenge/challenge.hpp"
#include "detectors/integrator.hpp"
#include "detectors/result_cache.hpp"
#include "rating/fair_generator.hpp"
#include "rating/overlay.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/scratch.hpp"

namespace rab {
namespace {

using rating::Dataset;
using rating::DatasetOverlay;
using rating::OverlayProduct;
using rating::ProductRatings;
using rating::Rating;

Rating make_rating(double time, double value, std::int64_t rater,
                   std::int64_t product, bool unfair) {
  Rating r;
  r.time = time;
  r.value = value;
  r.rater = RaterId(rater);
  r.product = ProductId(product);
  r.unfair = unfair;
  return r;
}

/// Small fair dataset for the equivalence tests.
Dataset make_fair(std::uint64_t seed, std::size_t products = 5,
                  double days = 150.0) {
  rating::FairDataConfig config;
  config.product_count = products;
  config.history_days = days;
  config.seed = seed;
  return rating::FairDataGenerator(config).generate();
}

/// Random unfair ratings for `product` across [t_lo, t_hi), including exact
/// time collisions with plausible base instants (integer-ish times).
std::vector<Rating> random_extras(Rng& rng, std::int64_t product,
                                  std::size_t count, double t_lo,
                                  double t_hi) {
  std::vector<Rating> out;
  for (std::size_t i = 0; i < count; ++i) {
    const bool collide = rng.uniform(0.0, 1.0) < 0.3;
    double t = rng.uniform(t_lo, t_hi - 0.01);
    if (collide) t = std::floor(t) + 0.5;  // likely shared instants
    t = std::clamp(t, t_lo, t_hi - 0.01);
    out.push_back(make_rating(t, std::floor(rng.uniform(0.0, 5.99)),
                              1'000'000 + static_cast<std::int64_t>(i),
                              product, true));
  }
  return out;
}

// --- OverlayProduct view vs materialized merged stream --------------------

TEST(OverlayProduct, MatchesWithAddedMergedStreamExactly) {
  Rng rng(11);
  const Dataset fair = make_fair(101, 3);
  const ProductId id(1);
  const Interval span = fair.span();
  const std::vector<Rating> extras =
      random_extras(rng, 1, 40, span.begin + 10.0, span.end - 5.0);

  const Dataset copied = fair.with_added(extras);
  const ProductRatings& reference = copied.product(id);
  const OverlayProduct view(&fair.product(id), id, extras);

  ASSERT_EQ(view.size(), reference.size());
  EXPECT_TRUE(view.touched());
  EXPECT_EQ(view.extra_count(), extras.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(view.at(i), reference.at(i)) << "merged position " << i;
  }
  EXPECT_EQ(view.span().begin, reference.span().begin);
  EXPECT_EQ(view.span().end, reference.span().end);
  EXPECT_EQ(view.values(), std::vector<double>(reference.values().begin(),
                                             reference.values().end()));

  std::vector<Rating> walked;
  view.for_each([&](const Rating& r) { walked.push_back(r); });
  EXPECT_EQ(walked, reference.to_rows());

  // merged() materializes the identical stream.
  EXPECT_EQ(view.merged().to_rows(), reference.to_rows());
}

TEST(OverlayProduct, IndexRangeAndInIntervalMatchEverywhere) {
  Rng rng(12);
  const Dataset fair = make_fair(102, 3);
  const ProductId id(2);
  const Interval span = fair.span();
  const std::vector<Rating> extras =
      random_extras(rng, 2, 25, span.begin + 5.0, span.end - 1.0);

  const Dataset copied = fair.with_added(extras);
  const ProductRatings& reference = copied.product(id);
  const OverlayProduct view(&fair.product(id), id, extras);

  for (double lo = span.begin - 3.0; lo < span.end + 3.0; lo += 7.3) {
    for (double len : {0.0, 1.5, 14.0, 60.0}) {
      const Interval interval{lo, lo + len};
      const signal::IndexRange want = reference.index_range(interval);
      const signal::IndexRange got = view.index_range(interval);
      EXPECT_EQ(got.first, want.first) << "lo=" << lo << " len=" << len;
      EXPECT_EQ(got.last, want.last) << "lo=" << lo << " len=" << len;
      EXPECT_EQ(view.in_interval(interval), reference.in_interval(interval));
    }
  }
}

TEST(OverlayProduct, ByTimeTiesKeepBaseBeforeExtras) {
  // An extra identical to a base rating in (time, value, rater) — differing
  // only in the unfair flag — must land *after* the base rating, exactly
  // where with_added's upper_bound insertion puts it.
  ProductRatings base((ProductId(7)));
  base.add(make_rating(10.0, 4.0, 42, 7, false));
  base.add(make_rating(20.0, 3.0, 43, 7, false));

  const std::vector<Rating> extras = {
      make_rating(10.0, 4.0, 42, 7, true),  // full ByTime tie with base[0]
      make_rating(20.0, 2.0, 44, 7, true),  // same time, smaller value
  };
  Dataset single;
  single.add(base.at(0));
  single.add(base.at(1));
  const Dataset combined = single.with_added(extras);
  const ProductRatings& reference = combined.product(ProductId(7));
  const OverlayProduct view(&base, ProductId(7), extras);

  ASSERT_EQ(view.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(view.at(i), reference.at(i)) << "position " << i;
  }
  // The tied pair: fair first, unfair second.
  EXPECT_FALSE(view.at(0).unfair);
  EXPECT_TRUE(view.at(1).unfair);
}

TEST(OverlayProduct, UntouchedProductDelegatesToBase) {
  const Dataset fair = make_fair(103, 2);
  const ProductRatings& base = fair.product(ProductId(1));
  const OverlayProduct view(&base, ProductId(1), {});
  EXPECT_FALSE(view.touched());
  EXPECT_EQ(view.size(), base.size());
  // Zero copy: merged() must be the base stream object itself.
  EXPECT_EQ(&view.merged(), &base);
}

// --- DatasetOverlay -------------------------------------------------------

TEST(DatasetOverlay, MirrorsWithAddedDataset) {
  Rng rng(13);
  const Dataset fair = make_fair(104, 4);
  const Interval span = fair.span();
  std::vector<Rating> extras =
      random_extras(rng, 1, 20, span.begin + 2.0, span.end - 2.0);
  const std::vector<Rating> more =
      random_extras(rng, 3, 15, span.begin + 2.0, span.end - 2.0);
  extras.insert(extras.end(), more.begin(), more.end());

  const DatasetOverlay overlay(fair, extras);
  const Dataset copied = fair.with_added(extras);

  EXPECT_EQ(overlay.product_ids(), copied.product_ids());
  EXPECT_EQ(overlay.total_ratings(), copied.total_ratings());
  EXPECT_EQ(overlay.span().begin, copied.span().begin);
  EXPECT_EQ(overlay.span().end, copied.span().end);
  EXPECT_TRUE(overlay.touched(ProductId(1)));
  EXPECT_TRUE(overlay.touched(ProductId(3)));
  EXPECT_FALSE(overlay.touched(ProductId(0)));
  EXPECT_FALSE(overlay.touched(ProductId(2)));

  for (ProductId id : copied.product_ids()) {
    const ProductRatings& reference = copied.product(id);
    const OverlayProduct& view = overlay.product(id);
    ASSERT_EQ(view.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(view.at(i), reference.at(i));
    }
  }

  const Dataset materialized = overlay.materialize();
  EXPECT_EQ(materialized.total_ratings(), copied.total_ratings());
}

TEST(DatasetOverlay, CoversProductsAbsentFromBase) {
  const Dataset fair = make_fair(105, 2);
  const Interval span = fair.span();
  const std::vector<Rating> extras = {
      make_rating(span.begin + 1.0, 1.0, 999, 77, true),
      make_rating(span.begin + 2.0, 2.0, 998, 77, true),
  };
  const DatasetOverlay overlay(fair, extras);
  EXPECT_TRUE(overlay.has_product(ProductId(77)));
  EXPECT_EQ(overlay.product(ProductId(77)).size(), 2u);
  EXPECT_EQ(overlay.product_count(), 3u);
}

// --- MP equivalence: overlay path vs copy path, all schemes, any threads --

class MpEquivalence : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { util::set_thread_count(GetParam()); }
  void TearDown() override {
    util::set_thread_count(std::thread::hardware_concurrency());
  }
};

TEST_P(MpEquivalence, AllSchemesBitIdenticalToCopyPath) {
  rating::FairDataConfig config;
  config.product_count = 5;
  config.history_days = 150.0;
  config.seed = 404;
  challenge::ChallengeConfig rules;
  rules.boost_targets = {ProductId(2)};
  rules.downgrade_targets = {ProductId(1), ProductId(4)};
  const challenge::Challenge c(rating::FairDataGenerator(config).generate(),
                               rules);

  Rng rng(77);
  const Interval window = c.config().window;
  challenge::Submission submission;
  submission.label = "equiv";
  for (ProductId target : c.targets()) {
    std::size_t k = 0;
    for (const Rating& r :
         random_extras(rng, target.value(), 30, window.begin, window.end)) {
      Rating fixed = r;
      fixed.rater = c.attacker(k++);  // obey the challenge's rater rules
      submission.ratings.push_back(fixed);
    }
  }
  ASSERT_EQ(c.validate(submission), challenge::Violation::kNone);

  const aggregation::SaScheme sa;
  const aggregation::MedianScheme med;
  const aggregation::EntropyScheme ent;
  const aggregation::BfScheme bf;
  aggregation::PConfig p_config;
  p_config.passes = 2;
  const aggregation::PScheme p(p_config);
  const auto rv = aggregation::make_scheme("RV");
  const auto xl = aggregation::make_scheme("XL");
  const auto sa_cg = aggregation::make_scheme("SA+CG");
  const std::vector<const aggregation::AggregationScheme*> schemes = {
      &sa, &med, &ent, &bf, &p, rv.get(), xl.get(), sa_cg.get()};

  const Dataset attacked = c.apply(submission);
  for (const aggregation::AggregationScheme* scheme : schemes) {
    const challenge::MpResult via_overlay =
        c.metric().evaluate(submission, *scheme);
    const challenge::MpResult via_copy =
        c.metric().evaluate_dataset(attacked, *scheme);

    EXPECT_EQ(via_overlay.overall, via_copy.overall) << scheme->name();
    ASSERT_EQ(via_overlay.per_product.size(), via_copy.per_product.size());
    for (const auto& [id, mp] : via_copy.per_product) {
      EXPECT_EQ(via_overlay.per_product.at(id), mp)
          << scheme->name() << " product " << id;
      EXPECT_EQ(via_overlay.deltas.at(id), via_copy.deltas.at(id))
          << scheme->name() << " product " << id;
    }

    // The allocation-light fast path agrees bit-for-bit too.
    EXPECT_EQ(c.metric().evaluate_overall(submission, *scheme),
              via_copy.overall)
        << scheme->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, MpEquivalence,
                         ::testing::Values(1, 4, 8));

// --- Detector-result cache ------------------------------------------------

ProductRatings make_stream(std::uint64_t seed, std::size_t n = 120) {
  Rng rng(seed);
  ProductRatings stream((ProductId(1)));
  std::vector<Rating> rs;
  for (std::size_t i = 0; i < n; ++i) {
    rs.push_back(make_rating(rng.uniform(0.0, 90.0),
                             std::floor(rng.uniform(0.0, 5.99)),
                             static_cast<std::int64_t>(i % 40), 1, false));
  }
  stream.add_all(rs);
  return stream;
}

TEST(IntegrationCache, CachedAnalysisIsBitIdenticalToFresh) {
  const ProductRatings stream = make_stream(1);
  const detectors::DetectorIntegrator integrator;
  detectors::IntegrationCache cache;

  const detectors::IntegrationResult fresh =
      integrator.analyze(stream, detectors::default_trust);
  const auto cached =
      integrator.analyze_cached(stream, detectors::default_trust, cache);
  const auto again =
      integrator.analyze_cached(stream, detectors::default_trust, cache);

  EXPECT_EQ(cached->suspicious, fresh.suspicious);
  EXPECT_EQ(again.get(), cached.get());  // second call reused the entry
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);  // the miss populated one entry
  EXPECT_EQ(cache.stats().stream_evictions, 0u);
  EXPECT_EQ(cache.stats().variant_evictions, 0u);
}

TEST(IntegrationCache, MutatedStreamNeverReusesStaleResult) {
  const ProductRatings stream = make_stream(2);
  const detectors::DetectorIntegrator integrator;
  detectors::IntegrationCache cache;
  (void)integrator.analyze_cached(stream, detectors::default_trust, cache);

  // Same stream with one extra rating: a different fingerprint, so the
  // cached analysis must not be reused and the result must equal a fresh
  // analyze() of the mutated stream.
  ProductRatings mutated = stream;
  mutated.add(make_rating(45.0, 0.0, 9999, 1, true));
  ASSERT_FALSE(detectors::stream_fingerprint(mutated) ==
               detectors::stream_fingerprint(stream));

  const auto via_cache =
      integrator.analyze_cached(mutated, detectors::default_trust, cache);
  const detectors::IntegrationResult fresh =
      integrator.analyze(mutated, detectors::default_trust);
  EXPECT_EQ(via_cache->suspicious, fresh.suspicious);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stream_count(), 2u);
}

TEST(IntegrationCache, NewTrustStateIsAPartialHitWithExactResult) {
  const ProductRatings stream = make_stream(3);
  const detectors::DetectorIntegrator integrator;
  detectors::IntegrationCache cache;
  (void)integrator.analyze_cached(stream, detectors::default_trust, cache);

  const detectors::TrustLookup low_trust = [](RaterId rater) {
    return rater.value() % 3 == 0 ? 0.1 : 0.7;
  };
  const auto via_cache = integrator.analyze_cached(stream, low_trust, cache);
  const detectors::IntegrationResult fresh =
      integrator.analyze(stream, low_trust);

  EXPECT_EQ(via_cache->suspicious, fresh.suspicious);
  EXPECT_EQ(via_cache->mc.suspicious.size(), fresh.mc.suspicious.size());
  EXPECT_EQ(cache.stats().partial_hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().inserts, 2u);  // one stream, two trust variants
  EXPECT_EQ(cache.stream_count(), 1u);
}

TEST(IntegrationCache, TrustFingerprintSeesValueChanges) {
  const ProductRatings stream = make_stream(4);
  const auto base = detectors::trust_fingerprint(
      stream, detectors::TrustLookup(detectors::default_trust));
  const auto other = detectors::trust_fingerprint(
      stream, [](RaterId) { return 0.4999; });
  EXPECT_FALSE(base == other);
}

TEST(IntegrationCache, EvictionOnlyForgetsNeverCorrupts) {
  const detectors::DetectorIntegrator integrator;
  detectors::IntegrationCache cache(/*max_streams=*/2, /*max_variants=*/1);
  const ProductRatings a = make_stream(10);
  const ProductRatings b = make_stream(11);
  const ProductRatings c = make_stream(12);
  (void)integrator.analyze_cached(a, detectors::default_trust, cache);
  (void)integrator.analyze_cached(b, detectors::default_trust, cache);
  (void)integrator.analyze_cached(c, detectors::default_trust, cache);
  EXPECT_EQ(cache.stream_count(), 2u);  // a evicted
  EXPECT_EQ(cache.stats().stream_evictions, 1u);
  EXPECT_EQ(cache.stats().inserts, 3u);

  const auto again =
      integrator.analyze_cached(a, detectors::default_trust, cache);
  const detectors::IntegrationResult fresh =
      integrator.analyze(a, detectors::default_trust);
  EXPECT_EQ(again->suspicious, fresh.suspicious);
  // Re-inserting a evicted the LRU stream again — evictions only forget.
  EXPECT_EQ(cache.stats().stream_evictions, 2u);

  // With max_variants=1, a second trust state on one stream evicts the
  // first variant rather than growing the entry.
  const detectors::TrustLookup skewed = [](RaterId r) {
    return r.value() % 2 == 0 ? 0.2 : 0.8;
  };
  (void)integrator.analyze_cached(a, skewed, cache);
  EXPECT_EQ(cache.stats().variant_evictions, 1u);
  EXPECT_EQ(cache.stream_count(), 2u);
}

// --- Scheme identity and the fair-baseline cache --------------------------

TEST(SchemeIdentity, ConfiguredSchemesEncodeTheirParameters) {
  aggregation::EntropyConfig loose;
  loose.entropy_threshold = 2.4;
  const aggregation::EntropyScheme a;
  const aggregation::EntropyScheme b(loose);
  EXPECT_EQ(a.name(), b.name());
  EXPECT_NE(a.identity(), b.identity());

  aggregation::BfConfig tight;
  tight.quantile = 0.01;
  EXPECT_NE(aggregation::BfScheme().identity(),
            aggregation::BfScheme(tight).identity());

  aggregation::PConfig one_pass;
  one_pass.passes = 1;
  EXPECT_NE(aggregation::PScheme().identity(),
            aggregation::PScheme(one_pass).identity());

  // Identity is stable for equal configurations.
  EXPECT_EQ(aggregation::EntropyScheme(loose).identity(),
            aggregation::EntropyScheme(loose).identity());
}

TEST(SchemeIdentity, FairBaselineCacheKeysOnIdentityNotName) {
  // Two same-name ENT schemes with different filters: before keying on
  // identity(), whichever ran first poisoned the other's baseline. Each
  // result must match a fresh metric that only ever saw that scheme.
  const Dataset fair = make_fair(106, 3);
  challenge::ChallengeConfig rules;
  rules.boost_targets = {ProductId(1)};
  rules.downgrade_targets = {ProductId(2)};
  const challenge::Challenge c(Dataset(fair), rules);

  challenge::Submission submission;
  submission.label = "identity";
  const Interval window = c.config().window;
  for (std::size_t i = 0; i < 20; ++i) {
    submission.ratings.push_back(make_rating(
        window.begin + 0.5 + static_cast<double>(i) * 0.7, 0.0,
        c.attacker(i).value(), 2, true));
  }
  ASSERT_EQ(c.validate(submission), challenge::Violation::kNone);

  aggregation::EntropyConfig aggressive;
  aggressive.entropy_threshold = 0.9;
  aggressive.min_mode_distance = 1.0;
  const aggregation::EntropyScheme plain;
  const aggregation::EntropyScheme strict(aggressive);

  const double plain_first = c.evaluate(submission, plain).overall;
  const double strict_second = c.evaluate(submission, strict).overall;

  const challenge::Challenge fresh(Dataset(fair), rules);
  EXPECT_EQ(fresh.evaluate(submission, strict).overall, strict_second);
  EXPECT_EQ(c.evaluate(submission, plain).overall, plain_first);
}

// --- Scratch buffers ------------------------------------------------------

TEST(Scratch, VectorsComeBackClearedAndTagsSeparateUses) {
  auto& a = util::scratch_vector<int, struct TagA>();
  a.push_back(1);
  a.push_back(2);
  auto& b = util::scratch_vector<int, struct TagB>();
  EXPECT_TRUE(b.empty());      // distinct tag, distinct buffer
  EXPECT_EQ(a.size(), 2u);     // untouched by the other tag

  auto& a_again = util::scratch_vector<int, struct TagA>();
  EXPECT_EQ(&a_again, &a);     // same storage reused...
  EXPECT_TRUE(a_again.empty());  // ...but cleared on borrow

  auto& m = util::scratch_map<int, int, struct TagA>();
  m[1] = 2;
  EXPECT_TRUE((util::scratch_map<int, int, struct TagA>().empty()));
}

}  // namespace
}  // namespace rab
