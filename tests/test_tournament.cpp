// Tests for the coordinated-squad generator and the scheme x attack
// tournament: determinism (bit-identical JSON across reruns and thread
// counts), the scheme factory grammar, and the acceptance criterion that
// the collusion-guard trust discount actually changes a squad cell.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "aggregation/factory.hpp"
#include "challenge/challenge.hpp"
#include "challenge/squad.hpp"
#include "core/tournament.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace rab {
namespace {

challenge::SquadConfig small_squad() {
  challenge::SquadConfig config;
  config.squad_size = 20;
  config.pre_days = 20.0;
  config.strike_offset_days = 25.0;
  config.strike_days = 20.0;
  config.bias = -2.5;
  config.sigma = 0.4;
  return config;
}

// --- SquadGenerator -------------------------------------------------------

TEST(Squad, DeterministicUnderSeedAndStream) {
  const challenge::Challenge c = challenge::Challenge::make_default(31);
  const challenge::SquadGenerator generator(c, 31);
  const challenge::Submission a = generator.generate(small_squad(), 7);
  const challenge::Submission b = generator.generate(small_squad(), 7);
  ASSERT_EQ(a.ratings.size(), b.ratings.size());
  for (std::size_t i = 0; i < a.ratings.size(); ++i) {
    EXPECT_EQ(a.ratings[i].time, b.ratings[i].time);
    EXPECT_EQ(a.ratings[i].value, b.ratings[i].value);
    EXPECT_EQ(a.ratings[i].rater, b.ratings[i].rater);
    EXPECT_EQ(a.ratings[i].product, b.ratings[i].product);
  }
  // A different stream decorrelates.
  const challenge::Submission other = generator.generate(small_squad(), 8);
  ASSERT_EQ(other.ratings.size(), a.ratings.size());
  bool any_differs = false;
  for (std::size_t i = 0; i < a.ratings.size(); ++i) {
    if (a.ratings[i].time != other.ratings[i].time) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Squad, StaysInsideChallengeWindow) {
  const challenge::Challenge c = challenge::Challenge::make_default(32);
  const challenge::SquadGenerator generator(c, 32);
  challenge::SquadConfig config = small_squad();
  config.strike_days = 500.0;  // would overrun without clamping
  const challenge::Submission s = generator.generate(config, 0);
  const Interval window = c.config().window;
  ASSERT_FALSE(s.ratings.empty());
  for (const rating::Rating& r : s.ratings) {
    EXPECT_GE(r.time, window.begin);
    EXPECT_LE(r.time, window.end);
    EXPECT_GE(r.value, rating::kMinRating);
    EXPECT_LE(r.value, rating::kMaxRating);
    EXPECT_TRUE(r.unfair);
  }
}

TEST(Squad, ChurnMintsFreshIdsBeyondTheBudget) {
  const challenge::Challenge c = challenge::Challenge::make_default(33);
  const challenge::SquadGenerator generator(c, 33);
  challenge::SquadConfig config = small_squad();
  config.churn_rate = 1.0;  // every member switches mid-strike
  const challenge::Submission s = generator.generate(config, 0);
  std::set<RaterId> ids;
  std::size_t sybil_ids = 0;
  for (const rating::Rating& r : s.ratings) {
    ids.insert(r.rater);
    if (r.rater.value() >=
        c.config().attacker_id_base +
            static_cast<std::int64_t>(config.squad_size)) {
      ++sybil_ids;
    }
  }
  // Personas plus at least some post-switch sybil ids.
  EXPECT_GT(ids.size(), config.squad_size);
  EXPECT_GT(sybil_ids, 0u);
}

TEST(Squad, DutyCycleZeroIsAllCamouflage) {
  const challenge::Challenge c = challenge::Challenge::make_default(34);
  const challenge::SquadGenerator generator(c, 34);
  challenge::SquadConfig config = small_squad();
  config.pre_days = 0.0;
  config.duty_cycle = 0.0;  // never strikes: every rating near fair mean
  const challenge::Submission s = generator.generate(config, 0);
  for (const rating::Rating& r : s.ratings) {
    EXPECT_NEAR(r.value, c.fair_mean(r.product), 3.0);
  }
  // Camouflage barely moves the aggregate.
  const auto sa = aggregation::make_scheme("SA");
  EXPECT_LT(c.metric().evaluate_overall(s, *sa), 0.5);
}

// --- Scheme factory -------------------------------------------------------

TEST(SchemeFactory, BuildsEverySpec) {
  for (const std::string base : {"SA", "BF", "P", "MED", "ENT", "RV",
                                 "XL"}) {
    EXPECT_NE(aggregation::make_scheme(base), nullptr) << base;
    const auto guarded = aggregation::make_scheme(base + "+CG");
    ASSERT_NE(guarded, nullptr) << base;
    EXPECT_EQ(guarded->name(), base + "+CG");
  }
}

TEST(SchemeFactory, RejectsUnknownSpec) {
  EXPECT_THROW(aggregation::make_scheme("nope"), InvalidArgument);
  EXPECT_THROW(aggregation::make_scheme(""), InvalidArgument);
  EXPECT_THROW(aggregation::make_scheme("+CG"), InvalidArgument);
  EXPECT_THROW(aggregation::make_scheme("SA+cg"), InvalidArgument);
}

// --- Tournament -----------------------------------------------------------

core::TournamentOptions mini_options() {
  core::TournamentOptions options;
  options.schemes = {"SA", "MED"};
  options.attacks = {"indep-random", "squad-pre"};
  options.search.trials = 2;
  options.search.max_rounds = 2;
  options.search.grid = 2;
  return options;
}

TEST(Tournament, RejectsUnknownSchemeOrAttack) {
  const challenge::Challenge c = challenge::Challenge::make_default(41);
  core::TournamentOptions options = mini_options();
  options.schemes = {"bogus"};
  EXPECT_THROW(core::run_tournament(c, options), InvalidArgument);
  options = mini_options();
  options.attacks = {"squad-unknown"};
  EXPECT_THROW(core::run_tournament(c, options), InvalidArgument);
}

TEST(Tournament, JsonByteIdenticalAcrossRerunsAndThreads) {
  const challenge::Challenge c = challenge::Challenge::make_default(42);
  const core::TournamentOptions options = mini_options();

  util::set_thread_count(1);
  const std::string serial =
      core::tournament_json(core::run_tournament(c, options));
  const std::string serial_again =
      core::tournament_json(core::run_tournament(c, options));
  util::set_thread_count(8);
  const std::string threaded =
      core::tournament_json(core::run_tournament(c, options));
  util::set_thread_count(std::thread::hardware_concurrency());

  EXPECT_EQ(serial, serial_again);
  EXPECT_EQ(serial, threaded);
}

TEST(Tournament, CellLookupAndTableCoverTheMatrix) {
  const challenge::Challenge c = challenge::Challenge::make_default(43);
  const core::TournamentOptions options = mini_options();
  const core::TournamentResult result = core::run_tournament(c, options);
  ASSERT_EQ(result.cells.size(), 4u);
  for (const std::string& scheme : options.schemes) {
    for (const std::string& attack : options.attacks) {
      const core::TournamentCell& cell = result.cell(scheme, attack);
      EXPECT_EQ(cell.scheme, scheme);
      EXPECT_EQ(cell.attack, attack);
      EXPECT_GT(cell.evaluations, 0u);
    }
  }
  EXPECT_THROW((void)result.cell("SA", "squad-osc"), InvalidArgument);

  const std::string table = core::tournament_table(result);
  for (const std::string& scheme : options.schemes) {
    EXPECT_NE(table.find("| " + scheme + " |"), std::string::npos);
  }
  for (const std::string& attack : options.attacks) {
    EXPECT_NE(table.find(attack), std::string::npos);
  }
}

TEST(Tournament, CollusionDiscountChangesASquadCell) {
  const challenge::Challenge c = challenge::Challenge::make_default(44);
  core::TournamentOptions options = mini_options();
  options.schemes = {"SA", "SA+CG"};
  options.attacks = {"squad-pre"};
  options.search.trials = 4;
  options.search.max_rounds = 3;
  const core::TournamentResult result = core::run_tournament(c, options);
  const double plain = result.cell("SA", "squad-pre").best_mp;
  const double guarded = result.cell("SA+CG", "squad-pre").best_mp;
  // The guard drops detected squad members, so the strongest found squad
  // attack must lose power — the discount-off control differs.
  EXPECT_LT(guarded, plain);
}

}  // namespace
}  // namespace rab
