// Serving subsystem tests: wire-protocol codecs and fuzzing, the bounded
// shard queue, and serve<->loadgen integration — including the central
// bit-identity contract: a 1-shard server equals the offline monitor on
// the same feed, an N-shard server equals N offline monitors on the
// hash-partitioned subfeeds, and a drain + restart from checkpoints
// equals a run that never stopped. The fuzz legs assert the robustness
// contract from net/wire.hpp: no malformed or truncated input may crash
// the server or wedge other connections.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "detectors/online_monitor.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/queue.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "rating/rating.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/shutdown.hpp"

namespace rab {
namespace {

namespace fs = std::filesystem;

// The fuzz legs write into connections the server may already have
// closed; without this the resulting SIGPIPE would kill the test binary
// instead of surfacing as a catchable EPIPE IoError.
const bool kSigpipeIgnored = (util::ignore_sigpipe(), true);

// --- wire codecs -----------------------------------------------------------

TEST(WireTest, FrameHeaderRoundTrip) {
  for (const net::FrameType type :
       {net::FrameType::kRate, net::FrameType::kTrust, net::FrameType::kAlarms,
        net::FrameType::kStats, net::FrameType::kSeries,
        net::FrameType::kMetrics, net::FrameType::kDrain,
        net::FrameType::kPing}) {
    const std::string bytes =
        net::encode_frame(net::Frame{type, std::string("abc")});
    ASSERT_EQ(bytes.size(), net::kFrameHeaderBytes + 3);
    const auto header = net::decode_frame_header(
        std::span<const char, net::kFrameHeaderBytes>(bytes.data(),
                                                      net::kFrameHeaderBytes),
        /*expect_request=*/true);
    EXPECT_EQ(header.type, static_cast<std::uint8_t>(type));
    EXPECT_EQ(header.length, 3u);
  }
  for (const net::FrameType type :
       {net::FrameType::kOk, net::FrameType::kRetry, net::FrameType::kError,
        net::FrameType::kJson, net::FrameType::kText}) {
    const std::string bytes = net::encode_frame(net::Frame{type, ""});
    const auto header = net::decode_frame_header(
        std::span<const char, net::kFrameHeaderBytes>(bytes.data(),
                                                      net::kFrameHeaderBytes),
        /*expect_request=*/false);
    EXPECT_EQ(header.type, static_cast<std::uint8_t>(type));
    EXPECT_EQ(header.length, 0u);
  }
}

TEST(WireTest, HeaderRejectsMalformed) {
  const auto decode = [](std::string bytes, bool expect_request) {
    bytes.resize(net::kFrameHeaderBytes, '\0');
    return net::decode_frame_header(
        std::span<const char, net::kFrameHeaderBytes>(bytes.data(),
                                                      net::kFrameHeaderBytes),
        expect_request);
  };
  // Unknown type byte.
  EXPECT_THROW((void)decode(std::string("\x55\x00\x00\x00\x00\x00\x00\x00", 8),
                            true),
               InvalidArgument);
  // A reply type where a request is expected, and vice versa.
  EXPECT_THROW((void)decode(std::string("\x80\x00\x00\x00\x00\x00\x00\x00", 8),
                            true),
               InvalidArgument);
  EXPECT_THROW((void)decode(std::string("\x01\x00\x00\x00\x00\x00\x00\x00", 8),
                            false),
               InvalidArgument);
  // Nonzero flags / reserved bytes.
  EXPECT_THROW((void)decode(std::string("\x08\x01\x00\x00\x00\x00\x00\x00", 8),
                            true),
               InvalidArgument);
  EXPECT_THROW((void)decode(std::string("\x08\x00\x07\x00\x00\x00\x00\x00", 8),
                            true),
               InvalidArgument);
  // Length beyond kMaxFramePayload (0xFFFFFFFF).
  EXPECT_THROW((void)decode(std::string("\x08\x00\x00\x00\xFF\xFF\xFF\xFF", 8),
                            true),
               InvalidArgument);
  // Oversized payload at encode time.
  net::Frame huge{net::FrameType::kText, std::string()};
  huge.payload.resize(net::kMaxFramePayload + 1);
  EXPECT_THROW((void)net::encode_frame(huge), InvalidArgument);
}

TEST(WireTest, RatePayloadRoundTrip) {
  std::vector<rating::Rating> batch;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    rating::Rating r;
    r.time = rng.uniform(0.0, 400.0);
    r.value = rng.uniform(0.0, 5.0);
    r.rater = RaterId(rng.uniform_int(0, 1 << 20));
    r.product = ProductId(rng.uniform_int(0, 63));
    r.unfair = (i % 7) == 0;
    batch.push_back(r);
  }
  const std::string payload = net::encode_rate_payload(batch);
  const std::vector<rating::Rating> decoded = net::decode_rate_payload(payload);
  EXPECT_EQ(decoded, batch);  // bit-identical through the wire
}

TEST(WireTest, RatePayloadRejectsMalformed) {
  // Too short for even the count prefix.
  EXPECT_THROW((void)net::decode_rate_payload("abc"), InvalidArgument);
  // Count prefix above kMaxBatchRatings must be rejected pre-allocation.
  std::string huge(4, '\0');
  huge[0] = '\xFF';
  huge[1] = '\xFF';
  huge[2] = '\xFF';
  huge[3] = '\x0F';
  EXPECT_THROW((void)net::decode_rate_payload(huge), InvalidArgument);
  // Count that disagrees with the actual byte count.
  rating::Rating r;
  r.time = 1.0;
  r.rater = RaterId(1);
  r.product = ProductId(1);
  std::string payload = net::encode_rate_payload({&r, 1});
  payload.pop_back();
  EXPECT_THROW((void)net::decode_rate_payload(payload), InvalidArgument);
  payload += "xy";
  EXPECT_THROW((void)net::decode_rate_payload(payload), InvalidArgument);
}

TEST(WireTest, SessionPayloadsRoundTripAndRejectDamage) {
  std::vector<rating::Rating> batch;
  rating::Rating r;
  r.time = 3.5;
  r.value = 4.0;
  r.rater = RaterId(9);
  r.product = ProductId(2);
  batch.push_back(r);

  const std::string seq_payload = net::encode_rate_seq_payload(41, batch);
  const net::SeqBatch sb = net::decode_rate_seq_payload(seq_payload);
  EXPECT_EQ(sb.seq, 41u);
  EXPECT_EQ(sb.ratings, batch);

  const std::string rate_ack =
      net::encode_rate_ack_payload({.accepted = 7, .durable_seq = 41});
  EXPECT_EQ(net::decode_rate_ack_payload(rate_ack).accepted, 7u);
  EXPECT_EQ(net::decode_rate_ack_payload(rate_ack).durable_seq, 41u);

  const std::string session_ack = net::encode_session_ack_payload(
      {.session_id = 0xABCDu, .durable_seq = 41});
  EXPECT_EQ(net::decode_session_ack_payload(session_ack).session_id, 0xABCDu);

  // Every single-bit flip anywhere in a v2 payload — data or trailer —
  // must be rejected: this is what keeps damaged frames from silently
  // ingesting wrong ratings or trimming unapplied frames off the window.
  for (const std::string* payload : {&seq_payload, &rate_ack, &session_ack}) {
    for (std::size_t byte = 0; byte < payload->size(); ++byte) {
      std::string mutated = *payload;
      mutated[byte] = static_cast<char>(mutated[byte] ^ 0x40);
      EXPECT_THROW(
          {
            if (payload == &seq_payload) {
              (void)net::decode_rate_seq_payload(mutated);
            } else if (payload == &rate_ack) {
              (void)net::decode_rate_ack_payload(mutated);
            } else {
              (void)net::decode_session_ack_payload(mutated);
            }
          },
          InvalidArgument)
          << "flipped byte " << byte;
    }
  }
  // Truncation below the trailer size is caught before any field read.
  EXPECT_THROW((void)net::decode_rate_ack_payload("abc"), InvalidArgument);
  EXPECT_THROW((void)net::decode_session_ack_payload(""), InvalidArgument);
  EXPECT_THROW((void)net::decode_rate_seq_payload("xy"), InvalidArgument);
}

TEST(WireTest, ScalarPayloadRoundTrips) {
  EXPECT_EQ(net::decode_u64_payload(net::encode_u64_payload(0)), 0u);
  EXPECT_EQ(net::decode_u64_payload(net::encode_u64_payload(~0ull)), ~0ull);
  EXPECT_EQ(net::decode_i64_payload(net::encode_i64_payload(-42)), -42);
  EXPECT_EQ(net::decode_f64_payload(net::encode_f64_payload(0.25)), 0.25);
  EXPECT_THROW((void)net::decode_u64_payload("short"), InvalidArgument);
  EXPECT_THROW((void)net::decode_i64_payload("123456789"), InvalidArgument);
}

TEST(WireTest, JsonRequestParsing) {
  const net::JsonRequest ping = net::parse_json_request(R"({"type":"ping"})");
  EXPECT_EQ(ping.type, "ping");

  const net::JsonRequest trust =
      net::parse_json_request(R"({"type":"trust","rater":17})");
  EXPECT_EQ(trust.type, "trust");
  EXPECT_EQ(trust.rater, 17);

  const net::JsonRequest rate = net::parse_json_request(
      R"({"type":"rate","ratings":[[1.5,4.0,7,3],[2.5,0.5,8,3,1]]})");
  ASSERT_EQ(rate.ratings.size(), 2u);
  EXPECT_EQ(rate.ratings[0].time, 1.5);
  EXPECT_EQ(rate.ratings[0].value, 4.0);
  EXPECT_EQ(rate.ratings[0].rater, RaterId(7));
  EXPECT_EQ(rate.ratings[0].product, ProductId(3));
  EXPECT_FALSE(rate.ratings[0].unfair);
  EXPECT_TRUE(rate.ratings[1].unfair);

  // to_frame produces the same bytes the binary client would send.
  const net::Frame frame = net::to_frame(rate);
  EXPECT_EQ(frame.type, net::FrameType::kRate);
  EXPECT_EQ(net::decode_rate_payload(frame.payload), rate.ratings);
}

TEST(WireTest, JsonRequestRejectsGarbage) {
  for (const char* line : {
           "",                                     //
           "not json",                             //
           "{",                                    //
           R"({"type":42})",                       //
           R"({"type":"ping")",                    //  unterminated object
           R"({"type":"ping"} trailing)",          //
           R"({"rater":1})",                       //  missing type
           R"({"type":"rate","ratings":[[1,2]]})",  //  short tuple
           R"({"type":"rate","ratings":"no"})",    //
       }) {
    EXPECT_THROW((void)net::parse_json_request(line), InvalidArgument)
        << "accepted: " << line;
  }
}

// --- bounded shard queue ---------------------------------------------------

TEST(QueueTest, ReserveIsAllOrNothingAtCapacity) {
  net::BoundedTaskQueue queue(2);
  ASSERT_TRUE(queue.try_reserve());
  ASSERT_TRUE(queue.try_reserve());
  EXPECT_FALSE(queue.try_reserve());  // queued + reserved at capacity
  queue.cancel_reserved();
  EXPECT_TRUE(queue.try_reserve());  // the cancelled slot is reusable
  queue.push_reserved(net::ShardTask{});
  queue.push_reserved(net::ShardTask{});
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_FALSE(queue.try_reserve());
}

TEST(QueueTest, AdminBypassesCapacityButNotClose) {
  net::BoundedTaskQueue queue(1);
  ASSERT_TRUE(queue.try_reserve());
  queue.push_reserved(net::ShardTask{});
  EXPECT_FALSE(queue.try_reserve());
  bool ran = false;
  EXPECT_TRUE(queue.push_admin(net::ShardTask{{}, [&] { ran = true; }}));
  queue.close();
  EXPECT_FALSE(queue.push_admin(net::ShardTask{{}, [] {}}));
  // pop drains both tasks pushed before close, then reports closed.
  net::ShardTask task;
  ASSERT_TRUE(queue.pop(task));
  ASSERT_TRUE(queue.pop(task));
  ASSERT_NE(task.job, nullptr);
  task.job();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(queue.pop(task));
}

TEST(QueueTest, PopBlocksUntilPushFromAnotherThread) {
  net::BoundedTaskQueue queue(4);
  net::ShardTask task;
  std::thread producer([&] {
    ASSERT_TRUE(queue.try_reserve());
    queue.push_reserved(net::ShardTask{{rating::Rating{}}, nullptr});
  });
  ASSERT_TRUE(queue.pop(task));
  EXPECT_EQ(task.ratings.size(), 1u);
  producer.join();
  queue.close();
  EXPECT_FALSE(queue.pop(task));
}

// --- server integration ----------------------------------------------------

/// Runs a Server's accept loop on a background thread and guarantees the
/// drain + join happens even when an assertion bails out of the test.
class ServerRunner {
 public:
  explicit ServerRunner(net::ServeConfig config) : server_(std::move(config)) {
    server_.start();
    thread_ = std::thread([this] { server_.run(); });
  }

  ~ServerRunner() { finish(); }

  net::Server& server() { return server_; }
  [[nodiscard]] const net::Addr& addr() const { return server_.addr(); }

  /// Drains and joins; after this the shard monitors are inspectable.
  void finish() {
    if (!thread_.joinable()) return;
    server_.request_drain();
    thread_.join();
  }

 private:
  net::Server server_;
  std::thread thread_;
};

net::ServeConfig local_config(std::size_t shards) {
  net::ServeConfig config;
  // Port 0 = kernel-assigned; Addr::parse deliberately rejects it (a
  // *configured* port 0 is a typo), so build the address directly.
  config.listen.host = "127.0.0.1";
  config.listen.port = 0;
  config.shards = shards;
  config.monitor.epoch_days = 20.0;
  config.monitor.retention_days = 60.0;
  config.monitor.trust_forgetting = 0.95;
  config.monitor.min_alarm_marks = 5;
  return config;
}

std::vector<rating::Rating> test_feed(std::uint64_t ratings) {
  net::LoadgenConfig shape;
  shape.ratings = ratings;
  shape.products = 16;
  shape.raters = 200;
  shape.days = 120.0;
  shape.seed = 97;
  return net::synthetic_feed(shape);
}

/// Everything the bit-identity contract covers, per shard.
struct Snapshot {
  std::vector<detectors::Alarm> alarms;
  std::vector<detectors::OnlineEpochStats> epochs;
  std::vector<trust::RaterCounts> trust;
  std::size_t ingested = 0;
  std::size_t resident = 0;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

Snapshot snapshot(const detectors::OnlineMonitor& m) {
  return Snapshot{m.alarms(), m.epoch_stats(), m.trust().export_counts(),
                  m.ingested(), m.resident_ratings()};
}

/// Offline reference: one monitor per shard over the hash-partitioned
/// subfeeds, same config, explicit flush.
std::vector<Snapshot> offline_reference(const std::vector<rating::Rating>& feed,
                                        const net::ServeConfig& config) {
  std::vector<Snapshot> out;
  for (std::size_t s = 0; s < config.shards; ++s) {
    detectors::OnlineMonitor monitor(config.monitor);
    for (const auto& r : feed) {
      if (net::shard_of(r.product.value(), config.shards) == s) {
        monitor.ingest(r);
      }
    }
    monitor.flush();
    out.push_back(snapshot(monitor));
  }
  return out;
}

void feed_server(const net::Addr& addr, std::span<const rating::Rating> feed,
                 std::size_t batch_size) {
  net::Client client(addr);
  std::uint64_t accepted = 0;
  for (std::size_t i = 0; i < feed.size(); i += batch_size) {
    const std::size_t n = std::min(batch_size, feed.size() - i);
    accepted += client.rate({feed.data() + i, n}).accepted;
  }
  ASSERT_EQ(accepted, feed.size());
}

class ShardIdentityTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

/// The core contract: an N-shard server fed over TCP is bit-identical to
/// N offline monitors over the shard subfeeds, at 1 and 8 analysis
/// threads. (N=1 is exactly "server == offline `rab monitor`".)
TEST_P(ShardIdentityTest, ServerMatchesOfflineReference) {
  const auto [shards, threads] = GetParam();
  util::set_thread_count(threads);
  const std::vector<rating::Rating> feed = test_feed(2000);
  const net::ServeConfig config = local_config(shards);

  ServerRunner runner(config);
  feed_server(runner.addr(), feed, 256);
  {
    net::Client client(runner.addr());
    (void)client.drain();  // flush + final partial epoch on every shard
  }
  runner.finish();

  const std::vector<Snapshot> reference = offline_reference(feed, config);
  ASSERT_EQ(runner.server().shards(), shards);
  std::size_t ingested = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    EXPECT_EQ(snapshot(runner.server().monitor(s)), reference[s])
        << "shard " << s << " diverged from the offline monitor";
    ingested += runner.server().monitor(s).ingested();
  }
  EXPECT_EQ(ingested, feed.size());
  util::set_thread_count(1);  // results are thread-count independent;
                              // keep later tests on a small pool
}

INSTANTIATE_TEST_SUITE_P(ShardsAndThreads, ShardIdentityTest,
                         ::testing::Values(std::tuple{1u, 1u},
                                           std::tuple{1u, 8u},
                                           std::tuple{8u, 1u},
                                           std::tuple{8u, 8u}));

/// Drain mid-feed, restart a fresh server from the per-shard checkpoint
/// directories, feed the remainder: the final state must equal a server
/// that never stopped (itself equal to the offline reference).
TEST(ServerTest, DrainRestartBitIdentical) {
  const std::vector<rating::Rating> feed = test_feed(1600);
  const fs::path root = fs::temp_directory_path() / "rab_test_net_ckpt";
  fs::remove_all(root);

  net::ServeConfig config = local_config(2);
  config.monitor.checkpoint_dir = (root / "ckpt").string();

  {
    ServerRunner first(config);
    feed_server(first.addr(), {feed.data(), feed.size() / 2}, 128);
    net::Client client(first.addr());
    (void)client.drain();  // checkpoints every shard pre-flush
    first.finish();
  }
  {
    ServerRunner second(config);  // restores from the drain checkpoints
    feed_server(second.addr(),
                {feed.data() + feed.size() / 2, feed.size() - feed.size() / 2},
                128);
    net::Client client(second.addr());
    (void)client.drain();
    second.finish();

    // Checkpoint knobs never affect results; keep the offline reference
    // out of the server's checkpoint root.
    net::ServeConfig plain = config;
    plain.monitor.checkpoint_dir.clear();
    const std::vector<Snapshot> reference = offline_reference(feed, plain);
    for (std::size_t s = 0; s < config.shards; ++s) {
      EXPECT_EQ(snapshot(second.server().monitor(s)), reference[s])
          << "shard " << s << " diverged after drain + restart";
    }
  }
  fs::remove_all(root);
}

// --- protocol robustness (fuzz) --------------------------------------------

std::string header_bytes(std::uint8_t type, std::uint8_t flags,
                         std::uint16_t reserved, std::uint32_t length) {
  std::string h(net::kFrameHeaderBytes, '\0');
  h[0] = static_cast<char>(type);
  h[1] = static_cast<char>(flags);
  std::memcpy(h.data() + 2, &reserved, 2);
  std::memcpy(h.data() + 4, &length, 4);
  return h;
}

/// After every hostile connection the server must still answer a fresh
/// ping — "never crash, never wedge" is the whole contract.
void expect_alive(const net::Addr& addr) {
  net::Client client(addr);
  EXPECT_NE(client.ping().find("pong"), std::string::npos);
}

TEST(ServerTest, SurvivesWireFuzz) {
  ServerRunner runner(local_config(2));
  const net::Addr& addr = runner.addr();

  {  // Unknown frame type: kError reply, connection closed.
    net::Client client(addr);
    client.send_raw(header_bytes(0x55, 0, 0, 0));
    EXPECT_THROW(
        {
          // Either an error frame or an immediate close is acceptable; a
          // second read must hit EOF because the connection is dropped.
          (void)client.read_reply();
          (void)client.read_reply();
        },
        IoError);
  }
  expect_alive(addr);

  {  // Nonzero flags/reserved bytes.
    net::Client client(addr);
    client.send_raw(header_bytes(0x08, 0xFF, 0xBEEF, 0));
    EXPECT_THROW(
        {
          (void)client.read_reply();
          (void)client.read_reply();
        },
        IoError);
  }
  expect_alive(addr);

  {  // Oversized length prefix: rejected before any allocation.
    net::Client client(addr);
    client.send_raw(header_bytes(0x01, 0, 0, 0xFFFFFFFFu));
    EXPECT_THROW(
        {
          (void)client.read_reply();
          (void)client.read_reply();
        },
        IoError);
  }
  expect_alive(addr);

  {  // Truncated frame: header promises 64 bytes, connection dies after 3.
    net::Client client(addr);
    client.send_raw(header_bytes(0x01, 0, 0, 64) + "abc");
  }  // ~Client closes mid-frame
  expect_alive(addr);

  {  // Mid-header disconnect.
    net::Client client(addr);
    client.send_raw(std::string("\x01\x00", 2));
  }
  expect_alive(addr);

  {  // Malformed rate payload (count disagrees with bytes): kError reply
     // but the connection survives — framing was never lost.
    net::Client client(addr);
    std::string payload(4, '\0');
    payload[0] = 5;  // five ratings promised, zero bytes provided
    client.send_raw(net::encode_frame(net::Frame{net::FrameType::kRate,
                                                 std::move(payload)}));
    const net::Frame reply = client.read_reply();
    EXPECT_EQ(reply.type, net::FrameType::kError);
    EXPECT_NE(client.ping().find("pong"), std::string::npos);  // same conn
  }
  expect_alive(addr);

  {  // Deterministic garbage volleys on fresh connections.
    Rng rng(20260808);
    for (int round = 0; round < 32; ++round) {
      net::Client client(addr);
      std::string junk;
      const std::size_t len =
          static_cast<std::size_t>(rng.uniform_int(1, 256));
      for (std::size_t i = 0; i < len; ++i) {
        junk.push_back(static_cast<char>(rng.uniform_int(0, 255)));
      }
      // First byte '{' selects JSONL mode, which must be just as sturdy.
      try {
        client.send_raw(junk);
      } catch (const IoError&) {
        // Server may close (and RST) before the whole volley is written.
      }
    }
    expect_alive(addr);
  }

  {  // JSONL garbage gets a JSON error line, and valid JSONL still works
     // afterwards on a fresh connection.
    net::Client client(addr);
    client.send_raw("{\"type\":\"bogus\"}\n");
  }
  expect_alive(addr);

  {  // Out-of-order ratings are rejected (counted, never ingested), and
     // the connection keeps serving.
    net::Client client(addr);
    rating::Rating a;
    a.time = 10.0;
    a.value = 4.0;
    a.rater = RaterId(1);
    a.product = ProductId(1);
    rating::Rating b = a;
    b.time = 5.0;  // time travel
    ASSERT_EQ(client.rate({&a, 1}).accepted, 1u);
    ASSERT_EQ(client.rate({&b, 1}).accepted, 1u);  // accepted into the queue
    EXPECT_NE(client.stats().find("\"rejected\""), std::string::npos);
  }
  runner.finish();

  // The rejected out-of-order rating must not appear in any shard.
  std::size_t ingested = 0;
  for (std::size_t s = 0; s < runner.server().shards(); ++s) {
    ingested += runner.server().monitor(s).ingested();
  }
  EXPECT_EQ(ingested, 1u);
}

// --- protocol v2: sessions, resume, exactly-once ---------------------------

net::SessionAck do_hello(net::Client& client) {
  const net::Frame reply = client.roundtrip({net::FrameType::kHello, ""});
  EXPECT_EQ(reply.type, net::FrameType::kSessionAck);
  return net::decode_session_ack_payload(reply.payload);
}

net::Frame rate_seq_frame(std::uint64_t seq,
                          std::span<const rating::Rating> batch) {
  return {net::FrameType::kRateSeq, net::encode_rate_seq_payload(seq, batch)};
}

/// Sends a kRateSeq and expects the kOk ack (no backpressure expected in
/// these small tests).
net::RateAck send_seq(net::Client& client, std::uint64_t seq,
                      std::span<const rating::Rating> batch) {
  const net::Frame reply = client.roundtrip(rate_seq_frame(seq, batch));
  EXPECT_EQ(reply.type, net::FrameType::kOk);
  return net::decode_rate_ack_payload(reply.payload);
}

TEST(SessionTest, HelloAssignsDistinctSessionsWithZeroFloor) {
  ServerRunner runner(local_config(2));
  net::Client a(runner.addr());
  net::Client b(runner.addr());
  const net::SessionAck sa = do_hello(a);
  const net::SessionAck sb = do_hello(b);
  EXPECT_NE(sa.session_id, 0u);
  EXPECT_NE(sb.session_id, 0u);
  EXPECT_NE(sa.session_id, sb.session_id);
  EXPECT_EQ(sa.durable_seq, 0u);
  EXPECT_EQ(sb.durable_seq, 0u);
}

/// The dedup core: replayed and regressed sequence numbers are acked but
/// never re-applied — the final monitor state equals the offline
/// reference over the deduplicated feed.
TEST(SessionTest, ReplayedAndRegressedFramesAreDedupedExactlyOnce) {
  const std::vector<rating::Rating> feed = test_feed(40);
  const net::ServeConfig config = local_config(2);
  ServerRunner runner(config);
  {
    net::Client client(runner.addr());
    do_hello(client);
    const std::span<const rating::Rating> first(feed.data(), 20);
    const std::span<const rating::Rating> second(feed.data() + 20, 20);
    EXPECT_EQ(send_seq(client, 1, first).accepted, 20u);
    // Replay of an already-enqueued frame: normal ack, no second apply.
    EXPECT_EQ(send_seq(client, 1, first).accepted, 20u);
    EXPECT_EQ(send_seq(client, 2, second).accepted, 20u);
    // Regressed sequence after a later one: also a dup, also no apply.
    EXPECT_EQ(send_seq(client, 1, first).accepted, 20u);
    (void)client.drain();
  }
  runner.finish();
  const std::vector<Snapshot> reference = offline_reference(feed, config);
  std::size_t ingested = 0;
  for (std::size_t s = 0; s < config.shards; ++s) {
    EXPECT_EQ(snapshot(runner.server().monitor(s)), reference[s])
        << "shard " << s;
    ingested += runner.server().monitor(s).ingested();
  }
  EXPECT_EQ(ingested, feed.size());  // zero lost, zero double-applied
}

/// Empty kRateSeq frames are durable-floor probes: once the workers have
/// committed every prior frame, a probe's ack reports the full floor.
TEST(SessionTest, ProbeConvergesToTheDurableFloor) {
  const std::vector<rating::Rating> feed = test_feed(60);
  ServerRunner runner(local_config(2));
  net::Client client(runner.addr());
  do_hello(client);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    (void)send_seq(client, seq,
                   {feed.data() + (seq - 1) * 20, std::size_t{20}});
  }
  std::uint64_t floor = 0;
  std::uint64_t probe_seq = 3;
  for (int round = 0; round < 500 && floor < 3; ++round) {
    floor = send_seq(client, ++probe_seq, {}).durable_seq;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(floor, 3u);
  (void)client.drain();
}

/// kResume re-attaches a new connection to the session, reports the
/// durable floor, and fences the previous owner connection out.
TEST(SessionTest, ResumeReportsFloorAndFencesTheZombieOwner) {
  const std::vector<rating::Rating> feed = test_feed(40);
  ServerRunner runner(local_config(2));
  net::Client zombie(runner.addr());
  const net::SessionAck opened = do_hello(zombie);
  (void)send_seq(zombie, 1, {feed.data(), 40});

  net::Client successor(runner.addr());
  const net::Frame resumed = successor.roundtrip(
      {net::FrameType::kResume, net::encode_u64_payload(opened.session_id)});
  ASSERT_EQ(resumed.type, net::FrameType::kSessionAck);
  EXPECT_EQ(net::decode_session_ack_payload(resumed.payload).session_id,
            opened.session_id);

  // The fenced zombie may not write into the session anymore.
  const net::Frame fenced =
      zombie.roundtrip(rate_seq_frame(2, {feed.data(), 1}));
  EXPECT_EQ(fenced.type, net::FrameType::kError);
  EXPECT_NE(fenced.payload.find("superseded"), std::string::npos);

  // The successor owns the sequence stream now; replay of seq 1 dedups.
  EXPECT_EQ(send_seq(successor, 1, {feed.data(), 40}).accepted, 40u);
  (void)successor.drain();
  runner.finish();
  std::size_t ingested = 0;
  for (std::size_t s = 0; s < runner.server().shards(); ++s) {
    ingested += runner.server().monitor(s).ingested();
  }
  EXPECT_EQ(ingested, 40u);
}

/// A graceful stop + restart from the per-shard stores: the same
/// ResilientClient rides across both servers via kResume, replays its
/// unacked window, and the final state is bit-identical to the offline
/// reference — the in-process version of the SIGKILL chaos leg.
TEST(SessionTest, ResilientClientResumesAcrossServerRestart) {
  const std::vector<rating::Rating> feed = test_feed(1200);
  const fs::path root = fs::temp_directory_path() / "rab_test_net_resume";
  fs::remove_all(root);
  net::ServeConfig config = local_config(2);
  config.listen =
      net::Addr::parse("unix:" + (root / "serve.sock").string());
  config.monitor.checkpoint_dir = (root / "ckpt").string();
  config.monitor.store_dir = (root / "store").string();
  fs::create_directories(root);

  net::ResilientConfig rc;
  rc.addr = config.listen;
  rc.backoff_base = 0.001;
  rc.backoff_cap = 0.05;
  rc.max_reconnects = 200;
  net::ResilientClient client(rc);
  std::uint64_t seq = 0;
  std::uint64_t accepted = 0;
  const std::size_t batch = 60;
  const std::size_t half = feed.size() / 2;
  {
    ServerRunner first(config);
    for (std::size_t at = 0; at < half; at += batch) {
      accepted += client.rate_seq(++seq, {feed.data() + at, batch}).accepted;
    }
    first.finish();  // closes the client's connection mid-session
  }
  {
    ServerRunner second(config);  // restores from the shard stores
    for (std::size_t at = half; at < feed.size(); at += batch) {
      accepted += client.rate_seq(++seq, {feed.data() + at, batch}).accepted;
    }
    EXPECT_GE(client.reconnects(), 1u);
    (void)client.raw().drain();
    second.finish();

    net::ServeConfig plain = local_config(2);
    const std::vector<Snapshot> reference = offline_reference(feed, plain);
    std::size_t ingested = 0;
    for (std::size_t s = 0; s < config.shards; ++s) {
      EXPECT_EQ(snapshot(second.server().monitor(s)), reference[s])
          << "shard " << s << " diverged across the restart";
      ingested += second.server().monitor(s).ingested();
    }
    EXPECT_EQ(ingested, feed.size());
    EXPECT_EQ(accepted, feed.size());
  }
  fs::remove_all(root);
}

/// net.* failpoints inject connection faults on both sides of the wire
/// (failed/short/corrupted writes, dropped accepts, server session
/// amnesia) while a ResilientClient streams a feed. Exactly-once must
/// hold regardless of where the faults land.
TEST(SessionTest, ExactlyOnceSurvivesInjectedNetworkFaults) {
  const std::vector<rating::Rating> feed = test_feed(800);
  const net::ServeConfig config = local_config(2);
  ServerRunner runner(config);

  util::arm_failpoints(
      "net.accept:throw,every=5;"
      "net.write.fail:throw,every=17;"
      "net.write.short:throw,every=19;"
      "net.frame.corrupt:corrupt,every=23,seed=3;"
      "net.read.short:throw,every=29;"
      "net.session.drop:throw,every=7");
  std::uint64_t accepted = 0;
  {
    net::ResilientConfig rc;
    rc.addr = runner.addr();
    rc.backoff_base = 0.001;
    rc.backoff_cap = 0.02;
    rc.max_reconnects = 10000;
    net::ResilientClient client(rc);
    std::uint64_t seq = 0;
    for (std::size_t at = 0; at < feed.size(); at += 50) {
      accepted += client.rate_seq(++seq, {feed.data() + at, 50}).accepted;
    }
    EXPECT_GT(client.reconnects(), 0u);
  }
  // Every armed fault site on the serve path must actually have fired.
  for (const char* name : {"net.write.fail", "net.write.short",
                           "net.frame.corrupt", "net.read.short"}) {
    EXPECT_GT(util::failpoint_fires(name), 0u) << name;
  }
  util::disarm_failpoints();

  {
    net::Client client(runner.addr());
    (void)client.drain();
  }
  runner.finish();
  const std::vector<Snapshot> reference = offline_reference(feed, config);
  std::size_t ingested = 0;
  for (std::size_t s = 0; s < config.shards; ++s) {
    EXPECT_EQ(snapshot(runner.server().monitor(s)), reference[s])
        << "shard " << s << " diverged under injected faults";
    ingested += runner.server().monitor(s).ingested();
  }
  EXPECT_EQ(ingested, feed.size());
  EXPECT_EQ(accepted, feed.size());
}

/// Hostile v2 frames: truncated or garbage payloads, stale ids, and
/// sequence regressions must never crash the server or double-apply —
/// mirroring SurvivesWireFuzz for the session protocol.
TEST(ServerTest, SurvivesSessionWireFuzz) {
  const std::vector<rating::Rating> feed = test_feed(10);
  ServerRunner runner(local_config(2));
  const net::Addr& addr = runner.addr();

  {  // kRateSeq without a session: kError, framing (and connection) live.
    net::Client client(addr);
    const net::Frame reply =
        client.roundtrip(rate_seq_frame(1, {feed.data(), 1}));
    EXPECT_EQ(reply.type, net::FrameType::kError);
    EXPECT_NE(client.ping().find("pong"), std::string::npos);
  }

  {  // Truncated kResume payload (4 of 8 bytes): kError, not a crash.
    net::Client client(addr);
    const net::Frame reply = client.roundtrip(
        {net::FrameType::kResume, std::string("\x01\x02\x03\x04", 4)});
    EXPECT_EQ(reply.type, net::FrameType::kError);
  }
  expect_alive(addr);

  {  // Resume of session id 0 is rejected.
    net::Client client(addr);
    const net::Frame reply = client.roundtrip(
        {net::FrameType::kResume, net::encode_u64_payload(0)});
    EXPECT_EQ(reply.type, net::FrameType::kError);
  }

  {  // Stale/unknown session id: adopted with a conservative zero floor
     // (the restarted-server path), never a crash.
    net::Client client(addr);
    const net::Frame reply = client.roundtrip(
        {net::FrameType::kResume, net::encode_u64_payload(0xDEADBEEFull)});
    ASSERT_EQ(reply.type, net::FrameType::kSessionAck);
    const net::SessionAck ack = net::decode_session_ack_payload(reply.payload);
    EXPECT_EQ(ack.session_id, 0xDEADBEEFull);
    EXPECT_EQ(ack.durable_seq, 0u);
  }

  {  // Sequence zero and truncated kRateSeq payloads: kError.
    net::Client client(addr);
    do_hello(client);
    const net::Frame zero =
        client.roundtrip(rate_seq_frame(0, {feed.data(), 1}));
    EXPECT_EQ(zero.type, net::FrameType::kError);
    const net::Frame runt = client.roundtrip(
        {net::FrameType::kRateSeq, std::string("\x01", 1)});
    EXPECT_EQ(runt.type, net::FrameType::kError);
    EXPECT_NE(client.ping().find("pong"), std::string::npos);
  }

  {  // A reply type on the request wire kills the connection only.
    net::Client client(addr);
    client.send_raw(net::encode_frame(
        {net::FrameType::kSessionAck,
         net::encode_session_ack_payload({1, 1})}));
    EXPECT_THROW(
        {
          (void)client.read_reply();
          (void)client.read_reply();
        },
        IoError);
  }
  expect_alive(addr);

  {  // Deterministic garbage payloads in valid kRateSeq/kResume framing.
    Rng rng(20260808);
    for (int round = 0; round < 32; ++round) {
      net::Client client(addr);
      std::string junk;
      const auto len = static_cast<std::size_t>(rng.uniform_int(0, 128));
      for (std::size_t i = 0; i < len; ++i) {
        junk.push_back(static_cast<char>(rng.uniform_int(0, 255)));
      }
      const net::FrameType type = (round % 2) == 0 ? net::FrameType::kRateSeq
                                                   : net::FrameType::kResume;
      try {
        const net::Frame reply = client.roundtrip({type, junk});
        EXPECT_TRUE(reply.type == net::FrameType::kError ||
                    reply.type == net::FrameType::kSessionAck);
      } catch (const IoError&) {
        // Close-before-read is acceptable; the server must stay up.
      }
    }
    expect_alive(addr);
  }

  // None of the hostile frames above carried an applicable rating, so
  // nothing may have reached any shard.
  {
    net::Client client(addr);
    (void)client.drain();
  }
  runner.finish();
  std::size_t ingested = 0;
  for (std::size_t s = 0; s < runner.server().shards(); ++s) {
    ingested += runner.server().monitor(s).ingested();
  }
  EXPECT_EQ(ingested, 0u);
}

TEST(ServerTest, QueriesAnswerDuringServing) {
  ServerRunner runner(local_config(2));
  net::Client client(runner.addr());

  rating::Rating r;
  r.time = 1.0;
  r.value = 0.5;
  r.rater = RaterId(42);
  r.product = ProductId(7);
  ASSERT_EQ(client.rate({&r, 1}).accepted, 1u);

  EXPECT_NE(client.ping().find("\"shards\":2"), std::string::npos);
  EXPECT_NE(client.stats().find("\"ingested\""), std::string::npos);
  EXPECT_NE(client.trust(42).find("\"rater\":42"), std::string::npos);
  EXPECT_NE(client.alarms(0).find("\"alarms\""), std::string::npos);
  EXPECT_NE(client.series(7).find("\"product\":7"), std::string::npos);
  EXPECT_NE(client.metrics().find("rab_serve_ratings"), std::string::npos);
}

TEST(ServerTest, LoadgenRoundTripAndReport) {
  const std::size_t shards = 2;
  ServerRunner runner(local_config(shards));

  net::LoadgenConfig load;
  load.addr = runner.addr();
  load.ratings = 1200;
  load.products = 16;
  load.raters = 200;
  load.days = 120.0;
  load.seed = 97;
  load.batch = 100;
  load.connections = 2;
  load.server_shards = shards;
  load.drain_at_end = true;

  const net::LoadgenReport report = net::run_loadgen(load);
  runner.finish();

  EXPECT_EQ(report.sent, load.ratings);
  EXPECT_EQ(report.accepted, load.ratings);
  EXPECT_GE(report.frames, load.ratings / load.batch);
  EXPECT_GT(report.ratings_per_second, 0.0);
  EXPECT_GE(report.p99, report.p50);
  ASSERT_EQ(report.buckets.size(), report.bounds.size() + 1);
  std::uint64_t histogram_total = 0;
  for (const std::uint64_t b : report.buckets) histogram_total += b;
  EXPECT_EQ(histogram_total, report.frames);

  const std::string json = net::report_json(report);
  EXPECT_NE(json.find("\"benchmark\":\"rab_loadgen\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_seconds\""), std::string::npos);

  // The loadgen feed is the same deterministic synthetic_feed the offline
  // reference uses, so the bit-identity contract holds here too.
  const std::vector<Snapshot> reference =
      offline_reference(net::synthetic_feed(load), local_config(shards));
  for (std::size_t s = 0; s < shards; ++s) {
    EXPECT_EQ(snapshot(runner.server().monitor(s)), reference[s]);
  }
}

TEST(ServerTest, UnixSocketServesAndRejectsBadAddr) {
  EXPECT_THROW((void)net::Addr::parse("no-port"), InvalidArgument);
  EXPECT_THROW((void)net::Addr::parse("host:99999"), InvalidArgument);
  EXPECT_THROW((void)net::Addr::parse("unix:"), InvalidArgument);

  const std::string path =
      (fs::temp_directory_path() / "rab_test_net.sock").string();
  net::ServeConfig config = local_config(1);
  config.listen = net::Addr::parse("unix:" + path);
  ServerRunner runner(config);
  net::Client client(runner.addr());
  EXPECT_NE(client.ping().find("pong"), std::string::npos);
  runner.finish();
  fs::remove(path);
}

}  // namespace
}  // namespace rab
