// Direct tests for the population analysis (AMP/LMP/UMP marking) and the
// aggregate-series CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "aggregation/sa_scheme.hpp"
#include "aggregation/series_io.hpp"
#include "challenge/analysis.hpp"
#include "rating/fair_generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab::challenge {
namespace {

Challenge tiny_challenge() {
  rating::FairDataConfig config;
  config.product_count = 3;
  config.history_days = 120.0;
  config.seed = 77;
  ChallengeConfig rules;
  rules.boost_targets = {ProductId(2)};
  rules.downgrade_targets = {ProductId(1)};
  return Challenge(rating::FairDataGenerator(config).generate(), rules);
}

/// Builds a submission with `count` ratings at `value` on product 1.
Submission sub(const Challenge& c, double value, std::size_t count,
               std::uint64_t seed) {
  Rng rng(seed);
  Submission s;
  s.label = "sub-" + std::to_string(seed);
  const Interval w = c.config().window;
  for (std::size_t i = 0; i < count; ++i) {
    rating::Rating r;
    r.time = rng.uniform(w.begin, w.end - 0.01);
    r.value = value;
    r.rater = c.attacker(i);
    r.product = ProductId(1);
    r.unfair = true;
    s.ratings.push_back(r);
  }
  return s;
}

TEST(Analysis, MarksScaleWithPopulationSize) {
  const Challenge c = tiny_challenge();
  std::vector<Submission> population;
  for (std::uint64_t i = 0; i < 4; ++i) {
    population.push_back(sub(c, static_cast<double>(i), 10 + 5 * i, i));
  }
  AnalysisOptions options;
  options.top_k = 2;
  const auto points = analyze_population(c, population,
                                         aggregation::SaScheme{}, options);
  ASSERT_EQ(points.size(), 4u);
  int amp = 0;
  for (const auto& p : points) amp += p.amp ? 1 : 0;
  EXPECT_EQ(amp, 2);
}

TEST(Analysis, BiasSignSeparatesLmpAndUmp) {
  const Challenge c = tiny_challenge();
  const double mean = c.fair_mean(ProductId(1));
  std::vector<Submission> population;
  population.push_back(sub(c, 0.0, 30, 1));  // negative bias
  population.push_back(sub(c, 5.0, 30, 2));  // positive bias (mean ~4)
  const auto points =
      analyze_population(c, population, aggregation::SaScheme{});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_LT(points[0].bias, 0.0);
  EXPECT_GT(points[1].bias, 0.0);
  EXPECT_TRUE(points[0].lmp);
  EXPECT_FALSE(points[0].ump);
  EXPECT_TRUE(points[1].ump);
  EXPECT_FALSE(points[1].lmp);
  EXPECT_GT(mean, 3.0);  // sanity on the fixture
}

TEST(Analysis, StrongerAttackRanksHigher) {
  const Challenge c = tiny_challenge();
  std::vector<Submission> population;
  population.push_back(sub(c, 0.0, 50, 1));  // strong
  population.push_back(sub(c, 3.0, 10, 2));  // weak
  const auto points =
      analyze_population(c, population, aggregation::SaScheme{});
  EXPECT_GT(points[0].overall_mp, points[1].overall_mp);
  const auto order = top_overall(points, 2);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);
}

TEST(Analysis, UnknownProductThrows) {
  const Challenge c = tiny_challenge();
  AnalysisOptions options;
  options.product = ProductId(99);
  EXPECT_THROW(analyze_population(c, {}, aggregation::SaScheme{}, options),
               Error);
}

TEST(Analysis, TopOverallTruncates) {
  std::vector<VarianceBiasPoint> points(5);
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].overall_mp = static_cast<double>(i);
  }
  const auto order = top_overall(points, 3);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 4u);
  EXPECT_EQ(order[2], 2u);
}

// ------------------------------------------------------- series io

TEST(SeriesIo, WriteSeriesCsvShape) {
  rating::FairDataConfig config;
  config.product_count = 2;
  config.history_days = 60.0;
  const rating::Dataset data =
      rating::FairDataGenerator(config).generate();
  const auto series = aggregation::SaScheme().aggregate(data, 30.0);

  std::ostringstream out;
  aggregation::write_series_csv(out, series);
  // Header + 2 products x 2 bins.
  std::istringstream in(out.str());
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') ++rows;
  }
  EXPECT_EQ(rows, 4);
}

TEST(SeriesIo, DeltaCsvZeroWhenIdentical) {
  rating::FairDataConfig config;
  config.product_count = 1;
  config.history_days = 60.0;
  const rating::Dataset data =
      rating::FairDataGenerator(config).generate();
  const auto series = aggregation::SaScheme().aggregate(data, 30.0);

  std::ostringstream out;
  aggregation::write_delta_csv(out, series, series);
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto last_comma = line.rfind(',');
    EXPECT_DOUBLE_EQ(std::stod(line.substr(last_comma + 1)), 0.0);
  }
}

TEST(SeriesIo, DeltaCsvMismatchedBinsThrow) {
  rating::FairDataConfig config;
  config.product_count = 1;
  config.history_days = 60.0;
  const rating::Dataset data =
      rating::FairDataGenerator(config).generate();
  const auto a = aggregation::SaScheme().aggregate(data, 30.0);
  const auto b = aggregation::SaScheme().aggregate(data, 20.0);
  std::ostringstream out;
  EXPECT_THROW(aggregation::write_delta_csv(out, a, b), Error);
}

TEST(SeriesIo, FileVariantRejectsBadPath) {
  aggregation::AggregateSeries series;
  EXPECT_THROW(
      aggregation::write_series_csv_file("/nonexistent/dir/x.csv", series),
      Error);
}

}  // namespace
}  // namespace rab::challenge
