// Property tests for the MP metric across seeds: invariants that must hold
// for any attack and any scheme.
#include <gtest/gtest.h>

#include <algorithm>

#include "aggregation/sa_scheme.hpp"
#include "challenge/challenge.hpp"
#include "challenge/participants.hpp"
#include "rating/fair_generator.hpp"
#include "util/rng.hpp"

namespace rab::challenge {
namespace {

Challenge make_challenge(std::uint64_t seed) {
  rating::FairDataConfig config;
  config.product_count = 4;
  config.history_days = 120.0;
  config.seed = seed;
  ChallengeConfig rules;
  rules.boost_targets = {ProductId(2)};
  rules.downgrade_targets = {ProductId(1)};
  return Challenge(rating::FairDataGenerator(config).generate(), rules);
}

Submission downgrade_attack(const Challenge& c, double value,
                            std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  Submission s;
  s.label = "prop";
  const Interval window = c.config().window;
  for (std::size_t i = 0; i < count; ++i) {
    rating::Rating r;
    r.time = rng.uniform(window.begin, window.end - 0.01);
    r.value = value;
    r.rater = c.attacker(i);
    r.product = ProductId(1);
    r.unfair = true;
    s.ratings.push_back(r);
  }
  return s;
}

class MpSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpSeedSweep, MpIsNonNegativeAndFinite) {
  const Challenge c = make_challenge(GetParam());
  const aggregation::SaScheme sa;
  const MpResult mp = c.evaluate(downgrade_attack(c, 0.0, 25, 3), sa);
  EXPECT_GE(mp.overall, 0.0);
  EXPECT_TRUE(std::isfinite(mp.overall));
  for (const auto& [id, value] : mp.per_product) {
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 2.0 * rating::kMaxRating);  // two bins, bounded shift
  }
}

TEST_P(MpSeedSweep, RatingsAtFairMeanBarelyMoveTheAggregate) {
  const Challenge c = make_challenge(GetParam());
  const double mean = c.fair_mean(ProductId(1));
  const aggregation::SaScheme sa;
  const MpResult mp = c.evaluate(
      downgrade_attack(c, std::round(mean), 25, 5), sa);
  // Injecting ratings at (rounded) fair mean can only shift a bin by the
  // rounding residue: well under half a star.
  EXPECT_LT(mp.per_product.at(ProductId(1)), 0.5);
}

TEST_P(MpSeedSweep, ExtremeBeatsModerateUnderSa) {
  const Challenge c = make_challenge(GetParam());
  const aggregation::SaScheme sa;
  const double extreme =
      c.evaluate(downgrade_attack(c, 0.0, 30, 7), sa).overall;
  const double moderate =
      c.evaluate(downgrade_attack(c, 3.0, 30, 7), sa).overall;
  EXPECT_GT(extreme, moderate);
}

TEST_P(MpSeedSweep, MpMonotoneInSquadSizeUnderSa) {
  const Challenge c = make_challenge(GetParam());
  const aggregation::SaScheme sa;
  double prev = -1.0;
  for (std::size_t count : {5u, 15u, 30u, 50u}) {
    const double mp =
        c.evaluate(downgrade_attack(c, 0.0, count, 11), sa).overall;
    EXPECT_GE(mp, prev - 1e-9) << "count " << count;
    prev = mp;
  }
}

TEST_P(MpSeedSweep, RaterIdentityIrrelevantUnderSa) {
  // Plain averaging ignores who rated: relabeling the attacker squad must
  // not change MP.
  const Challenge c = make_challenge(GetParam());
  const aggregation::SaScheme sa;
  Submission s = downgrade_attack(c, 1.0, 30, 13);
  const double before = c.evaluate(s, sa).overall;
  // Rotate rater ids inside the squad.
  for (auto& r : s.ratings) {
    const std::int64_t base = c.config().attacker_id_base;
    const std::int64_t k = r.rater.value() - base;
    r.rater = RaterId(base + (k + 17) % 50);
  }
  const double after = c.evaluate(s, sa).overall;
  EXPECT_NEAR(before, after, 1e-12);
}

TEST_P(MpSeedSweep, PerProductIsTopTwoOfDeltas) {
  const Challenge c = make_challenge(GetParam());
  const aggregation::SaScheme sa;
  const MpResult mp = c.evaluate(downgrade_attack(c, 0.0, 25, 17), sa);
  for (const auto& [id, value] : mp.per_product) {
    EXPECT_NEAR(value, top_two_sum(mp.deltas.at(id)), 1e-12);
    double sum = 0.0;
    for (double d : mp.deltas.at(id)) sum += d;
    EXPECT_LE(value, sum + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpSeedSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace rab::challenge
