// Tests for the detection-quality (precision/recall) evaluation.
#include <gtest/gtest.h>

#include "challenge/detection_quality.hpp"
#include "challenge/participants.hpp"

namespace rab::challenge {
namespace {

const Challenge& shared_challenge() {
  static const Challenge c = Challenge::make_default(33);
  return c;
}

TEST(DetectionCounts, RatiosOnKnownValues) {
  DetectionCounts c;
  c.true_positives = 8;
  c.false_negatives = 2;
  c.false_positives = 4;
  c.true_negatives = 86;
  EXPECT_DOUBLE_EQ(c.precision(), 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.8);
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 4.0 / 90.0);
  EXPECT_NEAR(c.f1(), 2 * (8.0 / 12.0) * 0.8 / ((8.0 / 12.0) + 0.8), 1e-12);
}

TEST(DetectionCounts, EmptyIsZeroNotNan) {
  DetectionCounts c;
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(DetectionCounts, Accumulation) {
  DetectionCounts a;
  a.true_positives = 1;
  a.false_negatives = 2;
  DetectionCounts b;
  b.true_positives = 3;
  b.false_positives = 4;
  a += b;
  EXPECT_EQ(a.true_positives, 4u);
  EXPECT_EQ(a.false_negatives, 2u);
  EXPECT_EQ(a.false_positives, 4u);
}

TEST(DetectionQualityEval, CountsCoverEveryRating) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 5);
  const Submission attack =
      population.make(StrategyKind::kNaiveExtreme, 0);
  const aggregation::PScheme p;
  const DetectionQuality quality = evaluate_detection(c, attack, p);

  const std::size_t total =
      quality.overall.true_positives + quality.overall.false_negatives +
      quality.overall.false_positives + quality.overall.true_negatives;
  EXPECT_EQ(total, c.fair().total_ratings() + attack.ratings.size());
  EXPECT_EQ(quality.overall.true_positives +
                quality.overall.false_negatives,
            attack.ratings.size());
}

TEST(DetectionQualityEval, NaiveAttackHighRecallLowFpr) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 5);
  const Submission attack =
      population.make(StrategyKind::kNaiveExtreme, 1);
  const aggregation::PScheme p;
  const DetectionQuality quality = evaluate_detection(c, attack, p);
  EXPECT_GT(quality.overall.recall(), 0.35);
  EXPECT_LT(quality.overall.false_positive_rate(), 0.12);
}

TEST(DetectionQualityEval, HighVarianceAttackLowersRecall) {
  // The variance-evasion story quantified from the defender's side.
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 5);
  const aggregation::PScheme p;
  const DetectionQuality naive = evaluate_detection(
      c, population.make(StrategyKind::kNaiveExtreme, 2), p);
  const DetectionQuality smart = evaluate_detection(
      c, population.make(StrategyKind::kHighVariance, 2), p);
  EXPECT_LT(smart.overall.recall(), naive.overall.recall());
}

TEST(DetectionQualityEval, PerProductSumsToOverall) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 5);
  const Submission attack = population.make(StrategyKind::kBursts, 0);
  const aggregation::PScheme p;
  const DetectionQuality quality = evaluate_detection(c, attack, p);
  DetectionCounts sum;
  for (const auto& [id, counts] : quality.per_product) sum += counts;
  EXPECT_EQ(sum.true_positives, quality.overall.true_positives);
  EXPECT_EQ(sum.false_negatives, quality.overall.false_negatives);
  EXPECT_EQ(sum.false_positives, quality.overall.false_positives);
  EXPECT_EQ(sum.true_negatives, quality.overall.true_negatives);
}

}  // namespace
}  // namespace rab::challenge
