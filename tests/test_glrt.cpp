// Tests for the Gaussian mean-change and Poisson rate-change GLRTs.
#include <gtest/gtest.h>

#include <vector>

#include "stats/glrt.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab::stats {
namespace {

std::vector<double> gaussian_block(Rng& rng, std::size_t n, double mean,
                                   double sigma) {
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.gaussian(mean, sigma));
  return xs;
}

std::vector<double> poisson_block(Rng& rng, std::size_t n, double rate) {
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(static_cast<double>(rng.poisson(rate)));
  }
  return xs;
}

// ------------------------------------------------------- Gaussian GLRT

TEST(GaussianGlrt, RejectsNegativeThreshold) {
  EXPECT_THROW(GaussianMeanGlrt(-1.0), Error);
}

TEST(GaussianGlrt, EmptyHalvesScoreZero) {
  GaussianMeanGlrt glrt(1.0);
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(glrt.statistic({}, xs), 0.0);
  EXPECT_DOUBLE_EQ(glrt.statistic(xs, {}), 0.0);
  EXPECT_FALSE(glrt.test({}, {}).change);
}

TEST(GaussianGlrt, NoChangeSmallStatistic) {
  Rng rng(1);
  GaussianMeanGlrt glrt(8.0);
  int false_alarms = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto x1 = gaussian_block(rng, 40, 4.0, 0.8);
    const auto x2 = gaussian_block(rng, 40, 4.0, 0.8);
    if (glrt.test(x1, x2).change) ++false_alarms;
  }
  // Threshold 8 corresponds to ~0.5% tail of chi2_1; expect very few.
  EXPECT_LE(false_alarms, 3);
}

TEST(GaussianGlrt, DetectsLargeMeanShift) {
  Rng rng(2);
  GaussianMeanGlrt glrt(8.0);
  int detections = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto x1 = gaussian_block(rng, 40, 4.0, 0.8);
    const auto x2 = gaussian_block(rng, 40, 2.5, 0.8);
    if (glrt.test(x1, x2).change) ++detections;
  }
  EXPECT_GE(detections, 48);
}

TEST(GaussianGlrt, StatisticGrowsWithShift) {
  Rng rng(3);
  GaussianMeanGlrt glrt(8.0);
  const auto base = gaussian_block(rng, 50, 4.0, 0.5);
  double prev = 0.0;
  for (double shift : {0.5, 1.0, 2.0, 3.0}) {
    Rng r2(7);
    std::vector<double> shifted;
    for (std::size_t i = 0; i < 50; ++i) {
      shifted.push_back(r2.gaussian(4.0 - shift, 0.5));
    }
    const double stat = glrt.statistic(base, shifted);
    EXPECT_GT(stat, prev);
    prev = stat;
  }
}

TEST(GaussianGlrt, LargerVarianceWeakensStatistic) {
  // The core phenomenon behind Figure 2: spreading the unfair values
  // suppresses the mean-change statistic.
  Rng rng(4);
  GaussianMeanGlrt glrt(8.0);
  const auto fair = gaussian_block(rng, 50, 4.0, 0.5);

  Rng tight_rng(11);
  Rng wide_rng(11);
  const auto tight = gaussian_block(tight_rng, 50, 2.0, 0.1);
  const auto wide = gaussian_block(wide_rng, 50, 2.0, 1.5);
  EXPECT_GT(glrt.statistic(fair, tight), glrt.statistic(fair, wide));
}

TEST(GaussianGlrt, ConstantHalvesUseSigmaFloor) {
  GaussianMeanGlrt glrt(1.0, 0.01);
  const std::vector<double> a(10, 4.0);
  const std::vector<double> b(10, 3.0);
  const double stat = glrt.statistic(a, b);
  EXPECT_TRUE(std::isfinite(stat));
  EXPECT_GT(stat, 1.0);  // clear separation even with the floor
}

TEST(GaussianGlrt, SymmetricInHalves) {
  Rng rng(5);
  GaussianMeanGlrt glrt(1.0);
  const auto x1 = gaussian_block(rng, 30, 4.0, 0.6);
  const auto x2 = gaussian_block(rng, 30, 3.0, 0.6);
  EXPECT_NEAR(glrt.statistic(x1, x2), glrt.statistic(x2, x1), 1e-12);
}

TEST(GaussianGlrt, UnequalHalvesSupported) {
  Rng rng(6);
  GaussianMeanGlrt glrt(8.0);
  const auto x1 = gaussian_block(rng, 10, 4.0, 0.5);
  const auto x2 = gaussian_block(rng, 60, 1.0, 0.5);
  EXPECT_TRUE(glrt.test(x1, x2).change);
}

/// Detection-probability sweep over the shift size.
class GaussianShiftSweep : public ::testing::TestWithParam<double> {};

TEST_P(GaussianShiftSweep, DetectionImprovesWithShift) {
  const double shift = GetParam();
  Rng rng(static_cast<std::uint64_t>(shift * 100));
  GaussianMeanGlrt glrt(8.0);
  int detections = 0;
  for (int t = 0; t < 40; ++t) {
    const auto x1 = gaussian_block(rng, 45, 4.0, 0.8);
    const auto x2 = gaussian_block(rng, 45, 4.0 - shift, 0.8);
    if (glrt.test(x1, x2).change) ++detections;
  }
  if (shift >= 1.0) {
    EXPECT_GE(detections, 35);
  }
  if (shift <= 0.1) {
    EXPECT_LE(detections, 10);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, GaussianShiftSweep,
                         ::testing::Values(0.0, 0.1, 1.0, 2.0, 3.0));

// ------------------------------------------------------- Poisson GLRT

TEST(PoissonGlrt, RejectsNegativeThreshold) {
  EXPECT_THROW(PoissonRateGlrt(-0.5), Error);
}

TEST(PoissonGlrt, EmptyHalvesScoreZero) {
  const std::vector<double> y{1.0, 2.0};
  EXPECT_DOUBLE_EQ(PoissonRateGlrt::statistic({}, y), 0.0);
  EXPECT_DOUBLE_EQ(PoissonRateGlrt::statistic(y, {}), 0.0);
}

TEST(PoissonGlrt, EqualRatesSmallStatistic) {
  Rng rng(21);
  PoissonRateGlrt glrt(0.08);
  int false_alarms = 0;
  for (int t = 0; t < 50; ++t) {
    const auto y1 = poisson_block(rng, 15, 3.0);
    const auto y2 = poisson_block(rng, 15, 3.0);
    if (glrt.test(y1, y2).change) ++false_alarms;
  }
  EXPECT_LE(false_alarms, 6);
}

TEST(PoissonGlrt, DetectsRateJump) {
  Rng rng(22);
  PoissonRateGlrt glrt(0.08);
  int detections = 0;
  for (int t = 0; t < 50; ++t) {
    const auto y1 = poisson_block(rng, 15, 3.0);
    const auto y2 = poisson_block(rng, 15, 6.0);
    if (glrt.test(y1, y2).change) ++detections;
  }
  EXPECT_GE(detections, 45);
}

TEST(PoissonGlrt, ZeroCountsHandled) {
  const std::vector<double> zeros(10, 0.0);
  const std::vector<double> busy(10, 5.0);
  const double stat = PoissonRateGlrt::statistic(zeros, busy);
  EXPECT_TRUE(std::isfinite(stat));
  EXPECT_GT(stat, 0.0);
}

TEST(PoissonGlrt, StatisticIsNonNegative) {
  Rng rng(23);
  for (int t = 0; t < 100; ++t) {
    const auto y1 = poisson_block(rng, 10, rng.uniform(0.5, 6.0));
    const auto y2 = poisson_block(rng, 10, rng.uniform(0.5, 6.0));
    EXPECT_GE(PoissonRateGlrt::statistic(y1, y2), -1e-12);
  }
}

TEST(PoissonGlrt, ExactValueOnDeterministicCounts) {
  // a = b = 2 days; Y1 = {2,2}, Y2 = {8,8}. Statistic =
  // 0.5*2*ln2 + 0.5*8*ln8 - 5*ln5.
  const std::vector<double> y1{2.0, 2.0};
  const std::vector<double> y2{8.0, 8.0};
  const double expected =
      0.5 * 2.0 * std::log(2.0) + 0.5 * 8.0 * std::log(8.0) -
      5.0 * std::log(5.0);
  EXPECT_NEAR(PoissonRateGlrt::statistic(y1, y2), expected, 1e-12);
}

/// Rate-ratio sweep: bigger jumps score higher.
class PoissonRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(PoissonRatioSweep, MonotoneInRatio) {
  const double ratio = GetParam();
  Rng rng(31);
  const auto y1 = poisson_block(rng, 20, 3.0);
  Rng rng2(32);
  const auto y2 = poisson_block(rng2, 20, 3.0 * ratio);
  Rng rng3(32);
  const auto y2_small = poisson_block(rng3, 20, 3.0 * std::max(ratio / 2.0, 1.0));
  if (ratio >= 2.0) {
    EXPECT_GE(PoissonRateGlrt::statistic(y1, y2),
              PoissonRateGlrt::statistic(y1, y2_small) - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, PoissonRatioSweep,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0));

}  // namespace
}  // namespace rab::stats
