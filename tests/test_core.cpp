// Tests for the attack generator core: value/time set generators, the
// value&time mapper (Procedure 3), region search (Procedure 2), and the
// end-to-end generator (Figure 8).
#include <gtest/gtest.h>

#include <cmath>

#include "aggregation/sa_scheme.hpp"
#include "core/attack_generator.hpp"
#include "core/region_search.hpp"
#include "core/time_set_generator.hpp"
#include "core/value_set_generator.hpp"
#include "core/value_time_mapper.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::core {
namespace {

// ------------------------------------------------- value set generator

TEST(ValueSet, CountAndRange) {
  Rng rng(1);
  ValueSetParams params;
  params.count = 100;
  const auto values = generate_value_set(params, rng);
  EXPECT_EQ(values.size(), 100u);
  for (double v : values) {
    EXPECT_GE(v, rating::kMinRating);
    EXPECT_LE(v, rating::kMaxRating);
  }
}

TEST(ValueSet, MeanNearTarget) {
  Rng rng(2);
  ValueSetParams params;
  params.fair_mean = 4.0;
  params.bias = -2.0;
  params.sigma = 0.5;
  params.count = 1000;
  params.discrete = false;
  const auto values = generate_value_set(params, rng);
  EXPECT_NEAR(stats::mean(values), 2.0, 0.1);
}

TEST(ValueSet, DiscreteValuesAreWholeStars) {
  Rng rng(3);
  ValueSetParams params;
  params.discrete = true;
  params.sigma = 1.0;
  params.count = 200;
  for (double v : generate_value_set(params, rng)) {
    EXPECT_DOUBLE_EQ(v, std::round(v));
  }
}

TEST(ValueSet, ZeroSigmaIsConstant) {
  Rng rng(4);
  ValueSetParams params;
  params.sigma = 0.0;
  params.bias = -3.0;
  params.count = 10;
  params.discrete = false;
  for (double v : generate_value_set(params, rng)) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(ValueSet, ClampingCompressesAgainstFloor) {
  Rng rng(5);
  ValueSetParams params;
  params.bias = -4.0;  // target mean 0: clamping halves the spread
  params.sigma = 1.0;
  params.count = 500;
  params.discrete = false;
  const auto values = generate_value_set(params, rng);
  const auto s = stats::summarize(values);
  EXPECT_GE(s.min, 0.0);
  EXPECT_GT(s.mean, 0.0);       // clamp pulls the mean up
  EXPECT_LT(s.stddev, 1.0);     // and shrinks the spread
}

TEST(ValueSet, NegativeSigmaThrows) {
  Rng rng(6);
  ValueSetParams params;
  params.sigma = -0.1;
  EXPECT_THROW(generate_value_set(params, rng), Error);
}

// ------------------------------------------------- time set generator

TEST(TimeSet, CountSortedWithinWindow) {
  Rng rng(11);
  TimeSetParams params;
  params.window = Interval{100.0, 182.0};
  params.offset_days = 10.0;
  params.duration_days = 30.0;
  params.count = 50;
  const auto times = generate_time_set(params, rng);
  EXPECT_EQ(times.size(), 50u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_GE(times[i], 110.0);
    EXPECT_LE(times[i], 140.0);
    if (i > 0) {
      EXPECT_GE(times[i], times[i - 1]);
    }
  }
}

TEST(TimeSet, DurationClippedToWindow) {
  Rng rng(12);
  TimeSetParams params;
  params.window = Interval{0.0, 20.0};
  params.offset_days = 10.0;
  params.duration_days = 100.0;
  params.count = 30;
  for (Day t : generate_time_set(params, rng)) {
    EXPECT_GE(t, 10.0);
    EXPECT_LT(t, 20.0);
  }
}

TEST(TimeSet, EmptyWindowThrows) {
  Rng rng(13);
  TimeSetParams params;
  params.window = Interval{5.0, 5.0};
  EXPECT_THROW(generate_time_set(params, rng), Error);
}

TEST(PoissonTimeSet, RespectsRateRoughly) {
  Rng rng(14);
  TimeSetParams params;
  params.window = Interval{0.0, 82.0};
  params.count = 50;
  // High rate: all 50 arrivals land in a short prefix.
  const auto fast = generate_poisson_time_set(params, 10.0, rng);
  EXPECT_EQ(fast.size(), 50u);
  EXPECT_LT(fast.back(), 20.0);
  // Low rate: arrivals spread, wrapping keeps them in-window.
  const auto slow = generate_poisson_time_set(params, 0.5, rng);
  EXPECT_EQ(slow.size(), 50u);
  for (Day t : slow) {
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 82.0);
  }
}

TEST(PoissonTimeSet, NonPositiveRateThrows) {
  Rng rng(15);
  TimeSetParams params;
  params.window = Interval{0.0, 82.0};
  EXPECT_THROW(generate_poisson_time_set(params, 0.0, rng), Error);
}


TEST(BurstTimeSet, CountAndWindowRespected) {
  Rng rng(16);
  TimeSetParams params;
  params.window = Interval{100.0, 182.0};
  params.offset_days = 5.0;
  params.duration_days = 60.0;
  params.count = 48;
  const auto times = generate_burst_time_set(params, 3, 4.0, rng);
  EXPECT_EQ(times.size(), 48u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_GE(times[i], 100.0);
    EXPECT_LT(times[i], 182.0);
    if (i > 0) {
      EXPECT_GE(times[i], times[i - 1]);
    }
  }
}

TEST(BurstTimeSet, ProducesDistinctClusters) {
  Rng rng(17);
  TimeSetParams params;
  params.window = Interval{0.0, 82.0};
  params.duration_days = 80.0;
  params.count = 60;
  const auto times = generate_burst_time_set(params, 3, 2.0, rng);
  // Expect at least one inter-rating gap larger than a burst (the space
  // between clusters).
  double max_gap = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    max_gap = std::max(max_gap, times[i] - times[i - 1]);
  }
  EXPECT_GT(max_gap, 2.0);
}

TEST(BurstTimeSet, RejectsBadArguments) {
  Rng rng(18);
  TimeSetParams params;
  params.window = Interval{0.0, 82.0};
  EXPECT_THROW(generate_burst_time_set(params, 0, 2.0, rng), Error);
  EXPECT_THROW(generate_burst_time_set(params, 2, 0.0, rng), Error);
}

// ------------------------------------------------- value & time mapper

rating::ProductRatings fair_fixture() {
  rating::ProductRatings fair(ProductId(1));
  // Alternating fair values 5, 3, 5, 3... at days 0, 10, 20, ...
  for (int i = 0; i < 10; ++i) {
    rating::Rating r;
    r.time = static_cast<double>(i) * 10.0;
    r.value = (i % 2 == 0) ? 5.0 : 3.0;
    r.rater = RaterId(i);
    r.product = ProductId(1);
    fair.add(r);
  }
  return fair;
}

TEST(Mapper, SizeMismatchThrows) {
  Rng rng(21);
  EXPECT_THROW(map_values_to_times({1.0}, {1.0, 2.0},
                                   CorrelationMode::kRandom, fair_fixture(),
                                   rng),
               Error);
}

TEST(Mapper, RandomModePreservesMultisets) {
  Rng rng(22);
  std::vector<double> values{0.0, 1.0, 2.0, 3.0};
  std::vector<Day> times{4.0, 3.0, 2.0, 1.0};
  const auto mapped = map_values_to_times(values, times,
                                          CorrelationMode::kRandom,
                                          fair_fixture(), rng);
  ASSERT_EQ(mapped.size(), 4u);
  std::multiset<double> got_values;
  std::multiset<double> got_times;
  for (const TimedValue& tv : mapped) {
    got_values.insert(tv.value);
    got_times.insert(tv.time);
  }
  EXPECT_EQ(got_values, (std::multiset<double>{0.0, 1.0, 2.0, 3.0}));
  EXPECT_EQ(got_times, (std::multiset<double>{1.0, 2.0, 3.0, 4.0}));
  for (std::size_t i = 1; i < mapped.size(); ++i) {
    EXPECT_GE(mapped[i].time, mapped[i - 1].time);
  }
}

TEST(Mapper, HeuristicAntiCorrelatesWithPrecedingFair) {
  // Fair value just before t=5 is 5.0 (rating at day 0), so the farthest
  // remaining unfair value (0.0) must be placed there; just before t=15 the
  // fair value is 3.0, taking the remaining value farthest from 3.
  std::vector<double> values{0.0, 5.0};
  std::vector<Day> times{5.0, 15.0};
  const auto mapped =
      heuristic_correlation(values, times, fair_fixture());
  ASSERT_EQ(mapped.size(), 2u);
  EXPECT_DOUBLE_EQ(mapped[0].time, 5.0);
  EXPECT_DOUBLE_EQ(mapped[0].value, 0.0);  // |0-5| = 5 beats |5-5| = 0
  EXPECT_DOUBLE_EQ(mapped[1].time, 15.0);
  EXPECT_DOUBLE_EQ(mapped[1].value, 5.0);
}

TEST(Mapper, HeuristicConsumesTimesInOrder) {
  std::vector<double> values{1.0, 2.0, 3.0};
  std::vector<Day> times{30.0, 10.0, 20.0};
  const auto mapped =
      heuristic_correlation(values, times, fair_fixture());
  ASSERT_EQ(mapped.size(), 3u);
  EXPECT_DOUBLE_EQ(mapped[0].time, 10.0);
  EXPECT_DOUBLE_EQ(mapped[1].time, 20.0);
  EXPECT_DOUBLE_EQ(mapped[2].time, 30.0);
}

TEST(Mapper, HeuristicWithEmptyFairStreamUsesMidScale) {
  rating::ProductRatings empty(ProductId(1));
  std::vector<double> values{0.0, 5.0};
  std::vector<Day> times{1.0, 2.0};
  const auto mapped = heuristic_correlation(values, times, empty);
  // NearV = 2.5: both 0 and 5 are equidistant; max_element picks the first
  // encountered maximum (0.0) deterministically.
  EXPECT_DOUBLE_EQ(mapped[0].value, 0.0);
}

TEST(Mapper, HeuristicBeforeFirstFairRatingUsesFront) {
  std::vector<double> values{0.0, 5.0};
  std::vector<Day> times{-5.0, 15.0};  // first time precedes all fair data
  const auto mapped =
      heuristic_correlation(values, times, fair_fixture());
  // Front fair value is 5.0 -> farthest is 0.0.
  EXPECT_DOUBLE_EQ(mapped[0].value, 0.0);
}


TEST(Mapper, BlendPicksClosestValue) {
  // Fair value just before t=5 is 5.0; the closest remaining unfair value
  // (5.0) must be placed there, leaving 0.0 for t=15 (preceding fair 3.0:
  // the remaining 0.0 is the only choice).
  std::vector<double> values{0.0, 5.0};
  std::vector<Day> times{5.0, 15.0};
  const auto mapped = blend_correlation(values, times, fair_fixture());
  ASSERT_EQ(mapped.size(), 2u);
  EXPECT_DOUBLE_EQ(mapped[0].value, 5.0);
  EXPECT_DOUBLE_EQ(mapped[1].value, 0.0);
}

TEST(Mapper, BlendModeThroughDispatcher) {
  Rng rng(29);
  std::vector<double> values{1.0, 4.0, 2.0};
  std::vector<Day> times{5.0, 15.0, 25.0};
  const auto direct = blend_correlation(values, times, fair_fixture());
  const auto via = map_values_to_times(values, times,
                                       CorrelationMode::kBlend,
                                       fair_fixture(), rng);
  ASSERT_EQ(direct.size(), via.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct[i].value, via[i].value);
    EXPECT_DOUBLE_EQ(direct[i].time, via[i].time);
  }
}

TEST(Mapper, BlendAndHeuristicAreOpposites) {
  // On a two-value set the blend picks what the heuristic rejects.
  std::vector<double> values{0.0, 3.0};
  std::vector<Day> times{5.0, 15.0};
  const auto anti = heuristic_correlation(values, times, fair_fixture());
  const auto blend = blend_correlation(values, times, fair_fixture());
  EXPECT_NE(anti[0].value, blend[0].value);
}

// ------------------------------------------------- region search

TEST(RegionSearch, RejectsBadOptions) {
  RegionSearchOptions options;
  options.shrink = 1.5;
  EXPECT_THROW(region_search(options, [](double, double, std::size_t) {
                 return 0.0;
               }),
               Error);
  EXPECT_THROW(region_search(RegionSearchOptions{}, nullptr), Error);
}

TEST(RegionSearch, ConvergesToQuadraticOptimum) {
  // MP surface peaked at (-2.3, 1.5): the search must home in on it.
  const auto evaluate = [](double bias, double sigma, std::size_t) {
    const double db = bias + 2.3;
    const double ds = sigma - 1.5;
    return 10.0 - db * db - ds * ds;
  };
  RegionSearchOptions options;
  const RegionSearchResult result = region_search(options, evaluate);
  EXPECT_NEAR(result.best_bias, -2.3, 0.5);
  EXPECT_NEAR(result.best_sigma, 1.5, 0.35);
  EXPECT_GT(result.best_mp, 9.0);
  EXPECT_GE(result.rounds.size(), 2u);
}

TEST(RegionSearch, AreaShrinksEveryRound) {
  const auto evaluate = [](double bias, double sigma, std::size_t) {
    return bias + sigma;  // corner optimum
  };
  RegionSearchOptions options;
  const RegionSearchResult result = region_search(options, evaluate);
  double prev_width = options.bias.width();
  for (const RegionSearchRound& round : result.rounds) {
    EXPECT_LT(round.bias.width(), prev_width);
    prev_width = round.bias.width();
  }
}

TEST(RegionSearch, StopsWhenAreaSmall) {
  const auto evaluate = [](double, double, std::size_t) { return 1.0; };
  RegionSearchOptions options;
  const RegionSearchResult result = region_search(options, evaluate);
  const RegionSearchRound& last = result.rounds.back();
  EXPECT_LT(last.bias.width(), options.min_bias_width);
  EXPECT_LT(last.sigma.width(), options.min_sigma_width);
}

TEST(RegionSearch, SigmaNeverNegative) {
  const auto evaluate = [](double, double sigma, std::size_t) {
    return -sigma;  // pushes toward sigma = 0
  };
  RegionSearchOptions options;
  const RegionSearchResult result = region_search(options, evaluate);
  EXPECT_GE(result.best_sigma, 0.0);
  for (const RegionSearchRound& round : result.rounds) {
    EXPECT_GE(round.sigma.lo, 0.0);
  }
}

TEST(RegionSearch, TrialCounterAdvances) {
  std::size_t max_trial = 0;
  std::size_t calls = 0;
  const auto evaluate = [&](double, double, std::size_t trial) {
    max_trial = std::max(max_trial, trial);
    ++calls;
    return 0.0;
  };
  RegionSearchOptions options;
  options.max_rounds = 2;
  (void)region_search(options, evaluate);
  EXPECT_EQ(calls, 2u * options.grid * options.grid * options.trials);
  EXPECT_EQ(max_trial, calls - 1);  // distinct trial ids
}

// ------------------------------------------------- attack generator

const challenge::Challenge& shared_challenge() {
  static const challenge::Challenge c = challenge::Challenge::make_default(55);
  return c;
}

TEST(AttackGenerator, GeneratesValidSubmissions) {
  const AttackGenerator generator(shared_challenge(), 9);
  AttackProfile profile;
  const challenge::Submission s = generator.generate(profile, 0);
  EXPECT_EQ(shared_challenge().validate(s), challenge::Violation::kNone)
      << to_string(shared_challenge().validate(s));
  // 4 targets x 50 ratings.
  EXPECT_EQ(s.ratings.size(), 200u);
}

TEST(AttackGenerator, RespectsBiasSign) {
  const AttackGenerator generator(shared_challenge(), 9);
  AttackProfile profile;
  profile.bias = -2.0;
  profile.sigma = 0.3;
  const challenge::Submission s = generator.generate(profile, 1);
  const challenge::Challenge& c = shared_challenge();
  for (ProductId id : c.config().downgrade_targets) {
    const auto stats = value_stats(s, id, c.fair_mean(id));
    EXPECT_LT(stats.bias, -1.0) << "downgrade product " << id;
  }
  for (ProductId id : c.config().boost_targets) {
    const auto stats = value_stats(s, id, c.fair_mean(id));
    EXPECT_GT(stats.bias, 0.0) << "boost product " << id;
  }
}

TEST(AttackGenerator, DurationControlsSpread) {
  const AttackGenerator generator(shared_challenge(), 9);
  AttackProfile short_profile;
  short_profile.duration_days = 5.0;
  AttackProfile long_profile;
  long_profile.duration_days = 60.0;
  const auto s1 = generator.generate(short_profile, 2);
  const auto s2 = generator.generate(long_profile, 2);
  const double d1 = s1.duration(ProductId(1)).length();
  const double d2 = s2.duration(ProductId(1)).length();
  EXPECT_LE(d1, 5.0 + 1e-9);
  EXPECT_GT(d2, 30.0);
}

TEST(AttackGenerator, SampleProfileWithinRanges) {
  const AttackGenerator generator(shared_challenge(), 9);
  ParameterRanges ranges;
  ranges.bias = Range{-3.0, -1.0};
  ranges.sigma = Range{0.2, 0.8};
  for (std::uint64_t stream = 0; stream < 20; ++stream) {
    const AttackProfile profile = generator.sample_profile(ranges, stream);
    EXPECT_TRUE(ranges.bias.contains(profile.bias));
    EXPECT_TRUE(ranges.sigma.contains(profile.sigma));
    EXPECT_TRUE(ranges.duration_days.contains(profile.duration_days));
  }
}

TEST(AttackGenerator, OptimizeBeatsRandomAgainstSa) {
  // Against plain averaging the optimum is extreme bias; Procedure 2 must
  // find an attack at least as strong as a mid-range random one.
  const challenge::Challenge& c = shared_challenge();
  const AttackGenerator generator(c, 9);
  const aggregation::SaScheme sa;

  AttackProfile timing;
  timing.duration_days = 40.0;

  RegionSearchOptions options;
  options.trials = 2;
  options.max_rounds = 3;
  const RegionSearchResult search = generator.optimize(sa, options, timing);
  EXPECT_LT(search.best_bias, -2.0);  // extreme bias wins without defense

  AttackProfile mild = timing;
  mild.bias = -1.0;
  mild.sigma = 0.5;
  const double mild_mp =
      c.evaluate(generator.generate(mild, 3), sa).overall;
  EXPECT_GE(search.best_mp, mild_mp);
}

TEST(AttackGenerator, RealizeBestReturnsStrongSubmission) {
  const challenge::Challenge& c = shared_challenge();
  const AttackGenerator generator(c, 9);
  const aggregation::SaScheme sa;
  RegionSearchResult search;
  search.best_bias = -3.5;
  search.best_sigma = 0.2;
  AttackProfile timing;
  timing.duration_days = 40.0;
  const challenge::Submission best =
      generator.realize_best(sa, search, timing, 3);
  EXPECT_EQ(c.validate(best), challenge::Violation::kNone);
  EXPECT_GT(c.evaluate(best, sa).overall, 1.0);
}

TEST(AttackGenerator, BlendCorrelationProducesValidSubmission) {
  const AttackGenerator generator(shared_challenge(), 9);
  AttackProfile profile;
  profile.correlation = CorrelationMode::kBlend;
  const challenge::Submission s = generator.generate(profile, 5);
  EXPECT_EQ(shared_challenge().validate(s), challenge::Violation::kNone);
}

TEST(AttackGenerator, HeuristicCorrelationModeProducesValidSubmission) {
  const AttackGenerator generator(shared_challenge(), 9);
  AttackProfile profile;
  profile.correlation = CorrelationMode::kHeuristic;
  const challenge::Submission s = generator.generate(profile, 4);
  EXPECT_EQ(shared_challenge().validate(s), challenge::Violation::kNone);
}

}  // namespace
}  // namespace rab::core
