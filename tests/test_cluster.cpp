// Tests for single-linkage clustering.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "cluster/single_linkage.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab::cluster {
namespace {

TEST(SingleLinkage1d, KEqualsOneIsOneCluster) {
  const std::vector<double> xs{1.0, 5.0, 9.0};
  const Clustering c = single_linkage_1d(xs, 1);
  EXPECT_EQ(c.cluster_count, 1u);
  for (std::size_t label : c.labels) EXPECT_EQ(label, 0u);
}

TEST(SingleLinkage1d, TwoObviousClusters) {
  const std::vector<double> xs{1.0, 1.1, 0.9, 5.0, 5.1};
  const Clustering c = single_linkage_1d(xs, 2);
  EXPECT_EQ(c.cluster_count, 2u);
  EXPECT_EQ(c.labels[0], c.labels[1]);
  EXPECT_EQ(c.labels[0], c.labels[2]);
  EXPECT_EQ(c.labels[3], c.labels[4]);
  EXPECT_NE(c.labels[0], c.labels[3]);
}

TEST(SingleLinkage1d, KEqualsNSingletons) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const Clustering c = single_linkage_1d(xs, 3);
  EXPECT_EQ(c.cluster_count, 3u);
  EXPECT_NE(c.labels[0], c.labels[1]);
  EXPECT_NE(c.labels[1], c.labels[2]);
}

TEST(SingleLinkage1d, UnsortedInputHandled) {
  const std::vector<double> xs{5.0, 1.0, 5.2, 0.9};
  const Clustering c = single_linkage_1d(xs, 2);
  EXPECT_EQ(c.labels[0], c.labels[2]);
  EXPECT_EQ(c.labels[1], c.labels[3]);
  EXPECT_NE(c.labels[0], c.labels[1]);
}

TEST(SingleLinkage1d, RejectsBadK) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(single_linkage_1d(xs, 0), Error);
  EXPECT_THROW(single_linkage_1d(xs, 3), Error);
}

TEST(SingleLinkage1d, SizesSumToN) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 40; ++i) xs.push_back(rng.uniform(0.0, 5.0));
  for (std::size_t k : {1u, 2u, 3u, 5u}) {
    const Clustering c = single_linkage_1d(xs, k);
    EXPECT_EQ(c.cluster_count, k);
    std::size_t total = 0;
    for (std::size_t s : c.sizes()) total += s;
    EXPECT_EQ(total, xs.size());
  }
}

TEST(SingleLinkageGeneric, MatchesOneDSpecialization) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 25; ++i) xs.push_back(rng.uniform(0.0, 10.0));
  const std::size_t n = xs.size();
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      dist[i * n + j] = std::abs(xs[i] - xs[j]);
    }
  }
  for (std::size_t k : {2u, 3u}) {
    const Clustering a = single_linkage_1d(xs, k);
    const Clustering b = single_linkage(dist, n, k);
    ASSERT_EQ(a.cluster_count, b.cluster_count);
    // Same partition up to label renaming: co-membership must agree.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        EXPECT_EQ(a.labels[i] == a.labels[j], b.labels[i] == b.labels[j])
            << "k=" << k << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(SingleLinkageGeneric, RejectsBadInputs) {
  const std::vector<double> dist{0.0, 1.0, 1.0, 0.0};
  EXPECT_THROW(single_linkage(dist, 3, 2), Error);   // size mismatch
  EXPECT_THROW(single_linkage(dist, 2, 3), Error);   // k > n
}

TEST(SingleLinkageGeneric, ChainingBehaviour) {
  // Single linkage chains: points 0-1-2 at distance 1 chain together even
  // though 0 and 2 are 2 apart; point 3 at distance 10 stays alone.
  const std::vector<double> xs{0.0, 1.0, 2.0, 12.0};
  const Clustering c = single_linkage_1d(xs, 2);
  EXPECT_EQ(c.labels[0], c.labels[1]);
  EXPECT_EQ(c.labels[1], c.labels[2]);
  EXPECT_NE(c.labels[0], c.labels[3]);
}

TEST(TwoClusterSizes, BalancedSplit) {
  const std::vector<double> xs{1.0, 1.1, 1.2, 4.0, 4.1, 4.2};
  const auto [small, large] = two_cluster_sizes(xs);
  EXPECT_EQ(small, 3u);
  EXPECT_EQ(large, 3u);
}

TEST(TwoClusterSizes, UnbalancedSplit) {
  const std::vector<double> xs{4.0, 4.1, 4.2, 3.9, 4.05, 0.5};
  const auto [small, large] = two_cluster_sizes(xs);
  EXPECT_EQ(small, 1u);
  EXPECT_EQ(large, 5u);
}

TEST(TwoClusterSizes, RequiresTwoPoints) {
  EXPECT_THROW(two_cluster_sizes(std::vector<double>{1.0}), Error);
}

TEST(TwoClusterSplit, GapAndCounts) {
  const std::vector<double> xs{1.0, 2.0, 5.0, 6.0};
  const Split1d split = two_cluster_split(xs);
  EXPECT_EQ(split.left_count, 2u);
  EXPECT_EQ(split.right_count, 2u);
  EXPECT_DOUBLE_EQ(split.gap, 3.0);
}

TEST(TwoClusterSplit, IdenticalValuesZeroGap) {
  const std::vector<double> xs{4.0, 4.0, 4.0};
  const Split1d split = two_cluster_split(xs);
  EXPECT_DOUBLE_EQ(split.gap, 0.0);
  EXPECT_EQ(split.left_count + split.right_count, 3u);
}

TEST(TwoClusterSplit, MatchesClusterSizes) {
  Rng rng(13);
  for (int t = 0; t < 20; ++t) {
    std::vector<double> xs;
    const int n = 5 + t;
    for (int i = 0; i < n; ++i) xs.push_back(rng.uniform(0.0, 5.0));
    const Split1d split = two_cluster_split(xs);
    const auto [small, large] = two_cluster_sizes(xs);
    const std::size_t lo = std::min(split.left_count, split.right_count);
    const std::size_t hi = std::max(split.left_count, split.right_count);
    EXPECT_EQ(lo, small);
    EXPECT_EQ(hi, large);
  }
}

// --- packed-triangle merge-order regression -------------------------------

// single_linkage_packed promises the exact merge order of single_linkage on
// the equivalent full matrix: edges ascend by distance with (i, j) as the
// deterministic tie-breaker. A tie-rich matrix would expose any ordering
// drift between the two layouts, so labels are compared exactly and the
// expected partition for the tied case is pinned.
TEST(SingleLinkagePacked, MatchesFullMatrixOnTieRichDistances) {
  // Distances drawn from a tiny set {1, 2, 3} so nearly every edge ties.
  const std::size_t n = 12;
  Rng rng(41);
  std::vector<double> full(n * n, 0.0);
  std::vector<double> packed(n * (n - 1) / 2, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = std::floor(rng.uniform(1.0, 4.0));
      full[i * n + j] = d;
      full[j * n + i] = d;
      packed[packed_index(i, j, n)] = d;
    }
  }
  for (std::size_t k : {1u, 2u, 3u, 5u, 11u}) {
    const Clustering a = single_linkage(full, n, k);
    const Clustering b = single_linkage_packed(packed, n, k);
    EXPECT_EQ(a.labels, b.labels) << "k=" << k;
    EXPECT_EQ(a.cluster_count, b.cluster_count) << "k=" << k;
  }
}

TEST(SingleLinkagePacked, PinnedLabelsOnAllTiedMatrix) {
  // Every pairwise distance equal: merges must proceed in (i, j) edge
  // order — (0,1), (0,2), (0,3) — so at k = 2 the last point is the
  // singleton. Pinning this freezes the tie-break contract.
  const std::size_t n = 4;
  std::vector<double> packed(n * (n - 1) / 2, 1.0);
  const Clustering c = single_linkage_packed(packed, n, 2);
  EXPECT_EQ(c.cluster_count, 2u);
  const std::vector<std::size_t> expected{0, 0, 0, 1};
  EXPECT_EQ(c.labels, expected);
}

TEST(SingleLinkagePacked, AgreesWithFullOnEuclideanPoints) {
  const std::size_t n = 20;
  const std::size_t dim = 3;
  Rng rng(17);
  std::vector<double> points(n * dim);
  for (double& p : points) p = rng.uniform(0.0, 1.0);
  const util::aligned_vector<double> packed =
      pairwise_euclidean(points, n, dim);
  std::vector<double> full(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      full[i * n + j] = packed[packed_index(i, j, n)];
      full[j * n + i] = full[i * n + j];
    }
  }
  for (std::size_t k : {1u, 2u, 4u, 19u}) {
    const Clustering a = single_linkage(full, n, k);
    const Clustering b =
        single_linkage_packed(std::span<const double>(packed), n, k);
    EXPECT_EQ(a.labels, b.labels) << "k=" << k;
  }
}

}  // namespace
}  // namespace rab::cluster
