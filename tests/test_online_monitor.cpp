// Tests for the streaming OnlineMonitor.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string_view>

#include "detectors/online_monitor.hpp"
#include "rating/fair_generator.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace rab::detectors {
namespace {

rating::Rating make_rating(double time, double value, std::int64_t rater,
                           std::int64_t product) {
  rating::Rating r;
  r.time = time;
  r.value = value;
  r.rater = RaterId(rater);
  r.product = ProductId(product);
  return r;
}

/// Sum of every rater's accumulated S+F evidence — with forgetting 1 this
/// must equal the number of ratings whose evidence was folded, each
/// exactly once.
double total_evidence(const trust::TrustManager& trust) {
  double total = 0.0;
  trust.visit([&](RaterId rater, double) {
    total += trust.successes(rater) + trust.failures(rater);
  });
  return total;
}

std::map<RaterId, double> trust_snapshot(const trust::TrustManager& trust) {
  std::map<RaterId, double> out;
  trust.visit([&](RaterId rater, double value) { out[rater] = value; });
  return out;
}

std::vector<rating::Rating> merged_time_ordered(
    const rating::Dataset& data) {
  std::vector<rating::Rating> all;
  for (ProductId id : data.product_ids()) {
    const auto rs = data.product(id).rows();
    all.insert(all.end(), rs.begin(), rs.end());
  }
  std::sort(all.begin(), all.end(), rating::ByTime{});
  return all;
}

rating::Dataset fair_data(std::uint64_t seed = 3) {
  rating::FairDataConfig config;
  config.product_count = 2;
  config.history_days = 150.0;
  config.seed = seed;
  return rating::FairDataGenerator(config).generate();
}

std::vector<rating::Rating> burst_attack(ProductId product, double begin,
                                         double end, std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<rating::Rating> out;
  for (std::size_t i = 0; i < count; ++i) {
    rating::Rating r;
    r.time = rng.uniform(begin, end);
    r.value = 0.0;
    r.rater = RaterId(1'000'000 + static_cast<std::int64_t>(i));
    r.product = product;
    r.unfair = true;
    out.push_back(r);
  }
  return out;
}

TEST(OnlineMonitor, RejectsBadConfig) {
  OnlineConfig config;
  config.epoch_days = 0.0;
  EXPECT_THROW(OnlineMonitor{config}, Error);
}

TEST(OnlineMonitor, RejectsOutOfOrderRatings) {
  OnlineMonitor monitor;
  rating::Rating r;
  r.time = 10.0;
  r.value = 4.0;
  r.rater = RaterId(1);
  r.product = ProductId(1);
  monitor.ingest(r);
  r.time = 5.0;
  EXPECT_THROW(monitor.ingest(r), InvalidArgument);
}

TEST(OnlineMonitor, CountsIngested) {
  OnlineMonitor monitor;
  const auto all = merged_time_ordered(fair_data());
  for (const auto& r : all) monitor.ingest(r);
  EXPECT_EQ(monitor.ingested(), all.size());
}

TEST(OnlineMonitor, FairStreamRaisesFewAlarms) {
  OnlineMonitor monitor;
  for (const auto& r : merged_time_ordered(fair_data(5))) {
    monitor.ingest(r);
  }
  monitor.flush();
  // Natural variation can raise the odd alarm; a flood of them would make
  // the monitor useless.
  EXPECT_LE(monitor.alarms().size(), 6u);
}

TEST(OnlineMonitor, BurstAttackRaisesAlarmOnRightProduct) {
  const rating::Dataset data = fair_data(7);
  auto all = merged_time_ordered(
      data.with_added(burst_attack(ProductId(1), 60.0, 72.0, 50, 9)));

  OnlineMonitor monitor;
  for (const auto& r : all) monitor.ingest(r);
  monitor.flush();

  bool product1_alarm = false;
  for (const Alarm& alarm : monitor.alarms()) {
    if (alarm.product == ProductId(1) &&
        alarm.interval.overlaps(Interval{55.0, 80.0})) {
      product1_alarm = true;
      EXPECT_GE(alarm.raised_at, 60.0);  // cannot precede the attack
      EXPECT_GT(alarm.marked_ratings, 10u);
    }
  }
  EXPECT_TRUE(product1_alarm);
}

TEST(OnlineMonitor, AlarmLatencyBoundedByEpoch) {
  const rating::Dataset data = fair_data(11);
  auto all = merged_time_ordered(
      data.with_added(burst_attack(ProductId(1), 60.0, 70.0, 50, 13)));
  OnlineConfig config;
  config.epoch_days = 15.0;
  OnlineMonitor monitor(config);
  for (const auto& r : all) monitor.ingest(r);
  monitor.flush();

  Day first_alarm = 1e9;
  for (const Alarm& alarm : monitor.alarms()) {
    if (alarm.product == ProductId(1) &&
        alarm.interval.overlaps(Interval{55.0, 75.0})) {
      first_alarm = std::min(first_alarm, alarm.raised_at);
    }
  }
  // The burst ends at day 70; with 15-day epochs the alarm must land
  // within one epoch of the attack's end.
  EXPECT_LE(first_alarm, 70.0 + 15.0 + 1.0);
}

TEST(OnlineMonitor, TrustTurnsAgainstStreamingAttackers) {
  const rating::Dataset data = fair_data(13);
  auto all = merged_time_ordered(
      data.with_added(burst_attack(ProductId(1), 60.0, 72.0, 50, 15)));
  OnlineMonitor monitor;
  for (const auto& r : all) monitor.ingest(r);
  monitor.flush();

  double attacker_trust = 0.0;
  for (int i = 0; i < 50; ++i) {
    attacker_trust += monitor.trust().trust(RaterId(1'000'000 + i));
  }
  attacker_trust /= 50.0;
  EXPECT_LT(attacker_trust, 0.45);
}

TEST(OnlineMonitor, FlushIdempotentOnEmpty) {
  OnlineMonitor monitor;
  EXPECT_NO_THROW(monitor.flush());
  EXPECT_TRUE(monitor.alarms().empty());
}

TEST(OnlineMonitor, RejectsBadRetention) {
  OnlineConfig config;
  config.epoch_days = 30.0;
  config.retention_days = 10.0;  // shorter than an epoch
  EXPECT_THROW(OnlineMonitor{config}, Error);
}

TEST(OnlineMonitor, RejectsNonFiniteRatings) {
  OnlineMonitor monitor;
  monitor.ingest(make_rating(10.0, 4.0, 1, 1));

  rating::Rating bad = make_rating(10.0, 4.0, 1, 1);
  bad.time = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(monitor.ingest(bad), InvalidArgument);
  bad.time = std::numeric_limits<double>::infinity();
  EXPECT_THROW(monitor.ingest(bad), InvalidArgument);
  bad = make_rating(11.0, std::numeric_limits<double>::quiet_NaN(), 1, 1);
  EXPECT_THROW(monitor.ingest(bad), InvalidArgument);

  // The rejected NaN time must not have poisoned the ordering guard: a
  // later in-order rating is accepted, an out-of-order one still throws.
  EXPECT_NO_THROW(monitor.ingest(make_rating(12.0, 4.0, 2, 1)));
  EXPECT_THROW(monitor.ingest(make_rating(5.0, 4.0, 3, 1)),
               InvalidArgument);
  EXPECT_EQ(monitor.ingested(), 2u);
}

TEST(OnlineMonitor, RejectsNegativeIds) {
  OnlineMonitor monitor;
  EXPECT_THROW(monitor.ingest(make_rating(1.0, 4.0, -1, 1)),
               InvalidArgument);
  EXPECT_THROW(monitor.ingest(make_rating(1.0, 4.0, 1, -1)),
               InvalidArgument);
}

TEST(OnlineMonitor, EpochBoundaryExactness) {
  // A rating at exactly t == next_epoch_ closes the epoch first and
  // belongs to the next one.
  OnlineConfig config;
  config.epoch_days = 10.0;
  OnlineMonitor monitor(config);
  monitor.ingest(make_rating(0.0, 4.0, 1, 1));
  monitor.ingest(make_rating(10.0, 4.0, 2, 1));

  ASSERT_EQ(monitor.epoch_stats().size(), 1u);
  EXPECT_DOUBLE_EQ(monitor.epoch_stats()[0].epoch_end, 10.0);
  EXPECT_EQ(monitor.epoch_stats()[0].ratings, 1u);
  // Only the first rating's evidence was folded at the boundary.
  EXPECT_DOUBLE_EQ(total_evidence(monitor.trust()), 1.0);

  monitor.flush();
  ASSERT_EQ(monitor.epoch_stats().size(), 2u);
  EXPECT_EQ(monitor.epoch_stats()[1].ratings, 1u);
  EXPECT_DOUBLE_EQ(total_evidence(monitor.trust()), 2.0);
}

TEST(OnlineMonitor, DuplicateTimestampsAccepted) {
  OnlineMonitor monitor;
  for (int i = 0; i < 5; ++i) {
    monitor.ingest(make_rating(3.0, static_cast<double>(i), 10 + i, 1));
  }
  monitor.flush();
  EXPECT_EQ(monitor.ingested(), 5u);
  EXPECT_DOUBLE_EQ(total_evidence(monitor.trust()), 5.0);
}

TEST(OnlineMonitor, EmptyEpochsAnalyzeCheaply) {
  OnlineConfig config;
  config.epoch_days = 10.0;
  OnlineMonitor monitor(config);
  monitor.ingest(make_rating(0.5, 4.0, 1, 1));
  monitor.ingest(make_rating(95.0, 4.0, 2, 1));

  // The jump closed nine epochs (10.5, 20.5, ..., 90.5).
  ASSERT_EQ(monitor.epoch_stats().size(), 9u);
  for (std::size_t i = 1; i < 9; ++i) {
    EXPECT_EQ(monitor.epoch_stats()[i].ratings, 0u);
    EXPECT_EQ(monitor.epoch_stats()[i].alarms, 0u);
  }
  // Epoch 1 is a cold miss; epoch 2 re-runs MC under the newly folded
  // trust (partial hit); stable trust makes every later epoch a full hit.
  EXPECT_EQ(monitor.epoch_stats()[0].cache_misses, 1u);
  EXPECT_EQ(monitor.epoch_stats()[1].cache_partial_hits, 1u);
  for (std::size_t i = 2; i < 9; ++i) {
    EXPECT_EQ(monitor.epoch_stats()[i].cache_hits, 1u);
  }
}

TEST(OnlineMonitor, FlushDoesNotDoubleCountTrustEvidence) {
  // The final partial epoch overlaps the tail of the last completed one;
  // the old fold interval re-counted those ratings' evidence. With exact
  // accounting, every rating is folded exactly once.
  OnlineMonitor monitor;  // 30-day epochs
  const auto all = merged_time_ordered(fair_data(23));
  for (const auto& r : all) monitor.ingest(r);
  monitor.flush();
  EXPECT_DOUBLE_EQ(total_evidence(monitor.trust()),
                   static_cast<double>(all.size()));
}

TEST(OnlineMonitor, FlushIsIdempotent) {
  OnlineConfig config;
  config.trust_forgetting = 0.9;  // decay must not re-apply either
  OnlineMonitor monitor(config);
  for (const auto& r : merged_time_ordered(fair_data(29))) {
    monitor.ingest(r);
  }
  monitor.flush();
  const auto alarms = monitor.alarms();
  const auto stats = monitor.epoch_stats();
  const auto trust = trust_snapshot(monitor.trust());

  monitor.flush();
  EXPECT_EQ(monitor.alarms(), alarms);
  EXPECT_EQ(monitor.epoch_stats(), stats);
  EXPECT_EQ(trust_snapshot(monitor.trust()), trust);
}

TEST(OnlineMonitor, PostFlushIngestDoesNotRefold) {
  OnlineConfig config;
  config.epoch_days = 10.0;
  OnlineMonitor monitor(config);
  for (int i = 0; i < 8; ++i) {
    monitor.ingest(make_rating(1.0 + i, 4.0, i, 1));
  }
  monitor.flush();
  EXPECT_DOUBLE_EQ(total_evidence(monitor.trust()), 8.0);

  // Keep streaming past the flush: only the new tail may be folded.
  for (int i = 0; i < 30; ++i) {
    monitor.ingest(make_rating(9.0 + i, 4.0, 100 + i, 1));
  }
  monitor.flush();
  EXPECT_DOUBLE_EQ(total_evidence(monitor.trust()), 38.0);
}

TEST(OnlineMonitor, BatchIngestMatchesSingle) {
  const auto all = merged_time_ordered(fair_data(31));
  OnlineMonitor one_by_one;
  for (const auto& r : all) one_by_one.ingest(r);
  one_by_one.flush();

  OnlineMonitor batched;
  batched.ingest(std::span<const rating::Rating>(all));
  batched.flush();

  EXPECT_EQ(batched.alarms(), one_by_one.alarms());
  EXPECT_EQ(batched.epoch_stats(), one_by_one.epoch_stats());
  EXPECT_EQ(trust_snapshot(batched.trust()),
            trust_snapshot(one_by_one.trust()));
}

/// Runs one monitor over `feed` with the given config and thread count,
/// restoring a 1-thread pool afterwards.
OnlineMonitor run_monitor(const std::vector<rating::Rating>& feed,
                          const OnlineConfig& config, std::size_t threads) {
  util::set_thread_count(threads);
  OnlineMonitor monitor(config);
  monitor.ingest(std::span<const rating::Rating>(feed));
  monitor.flush();
  util::set_thread_count(1);
  return monitor;
}

TEST(OnlineMonitor, IncrementalMatchesFullReanalysis) {
  // The incremental engine (detector-result cache + parallel fan-out)
  // must produce alarms, per-epoch counters, and trust bit-identical to
  // the naive full-reanalysis path, at 1 and N threads.
  const rating::Dataset data = fair_data(37);
  const auto feed = merged_time_ordered(
      data.with_added(burst_attack(ProductId(1), 60.0, 72.0, 50, 41)));

  OnlineConfig full;
  full.epoch_days = 15.0;
  full.cache_streams = 0;  // the naive baseline: full detector bank per epoch
  const OnlineMonitor baseline = run_monitor(feed, full, 1);

  OnlineConfig incremental = full;
  incremental.cache_streams = 256;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const OnlineMonitor monitor = run_monitor(feed, incremental, threads);
    EXPECT_EQ(monitor.alarms(), baseline.alarms()) << threads << " threads";
    EXPECT_EQ(trust_snapshot(monitor.trust()),
              trust_snapshot(baseline.trust()));
    ASSERT_EQ(monitor.epoch_stats().size(), baseline.epoch_stats().size());
    for (std::size_t i = 0; i < monitor.epoch_stats().size(); ++i) {
      OnlineEpochStats a = monitor.epoch_stats()[i];
      const OnlineEpochStats& b = baseline.epoch_stats()[i];
      // Cache counters legitimately differ between the two paths.
      a.cache_hits = b.cache_hits;
      a.cache_partial_hits = b.cache_partial_hits;
      a.cache_misses = b.cache_misses;
      EXPECT_EQ(a, b) << "epoch " << i << ", " << threads << " threads";
    }
    // Sanity: the attack actually fired on both paths.
    EXPECT_FALSE(monitor.alarms().empty());
  }
}

TEST(OnlineMonitor, RetentionBoundsResidentHistory) {
  rating::FairDataConfig fair_config;
  fair_config.product_count = 2;
  fair_config.history_days = 400.0;
  fair_config.seed = 43;
  const rating::Dataset data =
      rating::FairDataGenerator(fair_config).generate();
  const auto feed = merged_time_ordered(
      data.with_added(burst_attack(ProductId(1), 340.0, 352.0, 50, 47)));

  OnlineConfig config;
  config.epoch_days = 15.0;
  config.retention_days = 60.0;
  OnlineMonitor monitor(config);
  monitor.ingest(std::span<const rating::Rating>(feed));
  monitor.flush();

  // Resident history stays bounded by the retention window while the full
  // feed keeps growing: ~2 products * ~3.5/day * (60 + 15) days plus the
  // attack burst, far below the ~2900-rating feed.
  EXPECT_EQ(monitor.ingested(), feed.size());
  EXPECT_GT(monitor.compacted_ratings(), feed.size() / 2);
  EXPECT_EQ(monitor.resident_ratings() + monitor.compacted_ratings(),
            feed.size());
  for (const OnlineEpochStats& e : monitor.epoch_stats()) {
    EXPECT_LE(e.resident_ratings, 900u) << "epoch at " << e.epoch_end;
  }
  // Trust evidence from compacted ratings was folded before the drop.
  EXPECT_DOUBLE_EQ(total_evidence(monitor.trust()),
                   static_cast<double>(feed.size()));

  // A late attack still raises an alarm on the right product.
  bool attack_alarm = false;
  for (const Alarm& alarm : monitor.alarms()) {
    if (alarm.product == ProductId(1) &&
        alarm.interval.overlaps(Interval{335.0, 360.0})) {
      attack_alarm = true;
    }
  }
  EXPECT_TRUE(attack_alarm);
}

TEST(OnlineMonitor, CompactedMarksDoNotPoisonTheAlarmBaseline) {
  // Two separated bursts on one product under a retention window narrow
  // enough that the first burst's marked ratings are compacted away before
  // the second burst arrives. Compaction subtracts the departed marks from
  // the fresh-marks baseline (previous_marks); without that adjustment the
  // baseline would stay inflated by the first burst and the second burst's
  // marks would not register as fresh — no alarm.
  rating::FairDataConfig fair_config;
  fair_config.product_count = 2;
  fair_config.history_days = 400.0;
  fair_config.seed = 43;
  const rating::Dataset data =
      rating::FairDataGenerator(fair_config).generate();
  const auto feed = merged_time_ordered(
      data.with_added(burst_attack(ProductId(1), 100.0, 112.0, 50, 47))
          .with_added(burst_attack(ProductId(1), 300.0, 312.0, 50, 53)));

  OnlineConfig config;
  config.epoch_days = 15.0;
  config.retention_days = 60.0;
  OnlineMonitor monitor(config);
  monitor.ingest(std::span<const rating::Rating>(feed));
  monitor.flush();

  bool first_alarm = false;
  bool second_alarm = false;
  for (const Alarm& alarm : monitor.alarms()) {
    if (alarm.product != ProductId(1)) continue;
    if (alarm.interval.overlaps(Interval{95.0, 120.0})) first_alarm = true;
    if (alarm.interval.overlaps(Interval{295.0, 320.0})) second_alarm = true;
  }
  EXPECT_TRUE(first_alarm);
  EXPECT_TRUE(second_alarm);
  // The first burst (and its marks) really did leave the window.
  EXPECT_GT(monitor.compacted_ratings(), 0u);
}

TEST(OnlineMonitor, MatchesOfflineDetectionRoughly) {
  // The final streaming analysis sees the same data as the offline
  // integrator; spot-check that the monitor marked a similar number of
  // attack ratings (trust paths differ, so only roughly).
  const rating::Dataset data = fair_data(17);
  const auto attack = burst_attack(ProductId(1), 60.0, 72.0, 50, 19);
  const rating::Dataset attacked = data.with_added(attack);

  OnlineMonitor monitor;
  for (const auto& r : merged_time_ordered(attacked)) monitor.ingest(r);
  monitor.flush();
  std::size_t online_marks = 0;
  for (const Alarm& a : monitor.alarms()) {
    if (a.product == ProductId(1)) online_marks += a.marked_ratings;
  }

  const IntegrationResult offline =
      DetectorIntegrator().analyze(attacked.product(ProductId(1)));
  EXPECT_GT(online_marks, offline.suspicious_count() / 2);
}

TEST(OnlineMonitor, MetricsRegistryAgreesWithEpochStats) {
  // The registry is observation-only, but its numbers must be the truth:
  // the monitor's deltas in the process-wide counters equal the sums of
  // the per-epoch stats the tests already trust.
  if (!util::metrics::kCompiledIn) GTEST_SKIP();
  util::metrics::set_enabled(true);
  const auto feed = merged_time_ordered(
      fair_data(23).with_added(burst_attack(ProductId(1), 60.0, 72.0, 50, 29)));

  OnlineConfig config;
  config.epoch_days = 15.0;
  const util::metrics::Snapshot before = util::metrics::scrape();
  const OnlineMonitor monitor = run_monitor(feed, config, 1);
  const util::metrics::Snapshot after = util::metrics::scrape();

  const auto delta = [&](std::string_view name) {
    return after.counter_value(name) - before.counter_value(name);
  };
  EXPECT_EQ(delta("monitor.ingested"), feed.size());
  EXPECT_EQ(delta("monitor.epochs"), monitor.epoch_stats().size());
  EXPECT_EQ(delta("monitor.alarms"), monitor.alarms().size());
  const auto cache = monitor.cache_stats();
  EXPECT_EQ(delta("cache.hits"), cache.hits);
  EXPECT_EQ(delta("cache.partial_hits"), cache.partial_hits);
  EXPECT_EQ(delta("cache.misses"), cache.misses);
  EXPECT_EQ(delta("cache.inserts"), cache.inserts);
  const auto* epoch_hist = after.histogram_of("monitor.epoch.seconds");
  ASSERT_NE(epoch_hist, nullptr);
  EXPECT_GE(epoch_hist->count, monitor.epoch_stats().size());
}

TEST(OnlineMonitor, OutputBitIdenticalWithMetricsOnOrOff) {
  // Instrumentation must never feed back into results: alarms, trust, and
  // epoch counters are bit-identical with collection on or off, at 1 and
  // 8 threads. (The compiled-out configuration is exercised by the
  // RAB_NO_METRICS=ON CI job running this same test.)
  const auto feed = merged_time_ordered(
      fair_data(31).with_added(burst_attack(ProductId(1), 60.0, 72.0, 50, 37)));
  OnlineConfig config;
  config.epoch_days = 15.0;
  config.cache_streams = 256;

  const OnlineMonitor baseline = run_monitor(feed, config, 1);
  for (const bool metrics_on : {true, false}) {
    util::metrics::set_enabled(metrics_on);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const OnlineMonitor monitor = run_monitor(feed, config, threads);
      EXPECT_EQ(monitor.alarms(), baseline.alarms())
          << "metrics " << metrics_on << ", " << threads << " threads";
      EXPECT_EQ(trust_snapshot(monitor.trust()),
                trust_snapshot(baseline.trust()));
      ASSERT_EQ(monitor.epoch_stats().size(),
                baseline.epoch_stats().size());
      for (std::size_t i = 0; i < monitor.epoch_stats().size(); ++i) {
        EXPECT_EQ(monitor.epoch_stats()[i], baseline.epoch_stats()[i])
            << "epoch " << i;
      }
    }
  }
  util::metrics::set_enabled(util::metrics::kCompiledIn);
}

}  // namespace
}  // namespace rab::detectors
