// Tests for the streaming OnlineMonitor.
#include <gtest/gtest.h>

#include <algorithm>

#include "detectors/online_monitor.hpp"
#include "rating/fair_generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab::detectors {
namespace {

std::vector<rating::Rating> merged_time_ordered(
    const rating::Dataset& data) {
  std::vector<rating::Rating> all;
  for (ProductId id : data.product_ids()) {
    const auto& rs = data.product(id).ratings();
    all.insert(all.end(), rs.begin(), rs.end());
  }
  std::sort(all.begin(), all.end(), rating::ByTime{});
  return all;
}

rating::Dataset fair_data(std::uint64_t seed = 3) {
  rating::FairDataConfig config;
  config.product_count = 2;
  config.history_days = 150.0;
  config.seed = seed;
  return rating::FairDataGenerator(config).generate();
}

std::vector<rating::Rating> burst_attack(ProductId product, double begin,
                                         double end, std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<rating::Rating> out;
  for (std::size_t i = 0; i < count; ++i) {
    rating::Rating r;
    r.time = rng.uniform(begin, end);
    r.value = 0.0;
    r.rater = RaterId(1'000'000 + static_cast<std::int64_t>(i));
    r.product = product;
    r.unfair = true;
    out.push_back(r);
  }
  return out;
}

TEST(OnlineMonitor, RejectsBadConfig) {
  OnlineConfig config;
  config.epoch_days = 0.0;
  EXPECT_THROW(OnlineMonitor{config}, Error);
}

TEST(OnlineMonitor, RejectsOutOfOrderRatings) {
  OnlineMonitor monitor;
  rating::Rating r;
  r.time = 10.0;
  r.value = 4.0;
  r.rater = RaterId(1);
  r.product = ProductId(1);
  monitor.ingest(r);
  r.time = 5.0;
  EXPECT_THROW(monitor.ingest(r), InvalidArgument);
}

TEST(OnlineMonitor, CountsIngested) {
  OnlineMonitor monitor;
  const auto all = merged_time_ordered(fair_data());
  for (const auto& r : all) monitor.ingest(r);
  EXPECT_EQ(monitor.ingested(), all.size());
}

TEST(OnlineMonitor, FairStreamRaisesFewAlarms) {
  OnlineMonitor monitor;
  for (const auto& r : merged_time_ordered(fair_data(5))) {
    monitor.ingest(r);
  }
  monitor.flush();
  // Natural variation can raise the odd alarm; a flood of them would make
  // the monitor useless.
  EXPECT_LE(monitor.alarms().size(), 6u);
}

TEST(OnlineMonitor, BurstAttackRaisesAlarmOnRightProduct) {
  const rating::Dataset data = fair_data(7);
  auto all = merged_time_ordered(
      data.with_added(burst_attack(ProductId(1), 60.0, 72.0, 50, 9)));

  OnlineMonitor monitor;
  for (const auto& r : all) monitor.ingest(r);
  monitor.flush();

  bool product1_alarm = false;
  for (const Alarm& alarm : monitor.alarms()) {
    if (alarm.product == ProductId(1) &&
        alarm.interval.overlaps(Interval{55.0, 80.0})) {
      product1_alarm = true;
      EXPECT_GE(alarm.raised_at, 60.0);  // cannot precede the attack
      EXPECT_GT(alarm.marked_ratings, 10u);
    }
  }
  EXPECT_TRUE(product1_alarm);
}

TEST(OnlineMonitor, AlarmLatencyBoundedByEpoch) {
  const rating::Dataset data = fair_data(11);
  auto all = merged_time_ordered(
      data.with_added(burst_attack(ProductId(1), 60.0, 70.0, 50, 13)));
  OnlineConfig config;
  config.epoch_days = 15.0;
  OnlineMonitor monitor(config);
  for (const auto& r : all) monitor.ingest(r);
  monitor.flush();

  Day first_alarm = 1e9;
  for (const Alarm& alarm : monitor.alarms()) {
    if (alarm.product == ProductId(1) &&
        alarm.interval.overlaps(Interval{55.0, 75.0})) {
      first_alarm = std::min(first_alarm, alarm.raised_at);
    }
  }
  // The burst ends at day 70; with 15-day epochs the alarm must land
  // within one epoch of the attack's end.
  EXPECT_LE(first_alarm, 70.0 + 15.0 + 1.0);
}

TEST(OnlineMonitor, TrustTurnsAgainstStreamingAttackers) {
  const rating::Dataset data = fair_data(13);
  auto all = merged_time_ordered(
      data.with_added(burst_attack(ProductId(1), 60.0, 72.0, 50, 15)));
  OnlineMonitor monitor;
  for (const auto& r : all) monitor.ingest(r);
  monitor.flush();

  double attacker_trust = 0.0;
  for (int i = 0; i < 50; ++i) {
    attacker_trust += monitor.trust().trust(RaterId(1'000'000 + i));
  }
  attacker_trust /= 50.0;
  EXPECT_LT(attacker_trust, 0.45);
}

TEST(OnlineMonitor, FlushIdempotentOnEmpty) {
  OnlineMonitor monitor;
  EXPECT_NO_THROW(monitor.flush());
  EXPECT_TRUE(monitor.alarms().empty());
}

TEST(OnlineMonitor, MatchesOfflineDetectionRoughly) {
  // The final streaming analysis sees the same data as the offline
  // integrator; spot-check that the monitor marked a similar number of
  // attack ratings (trust paths differ, so only roughly).
  const rating::Dataset data = fair_data(17);
  const auto attack = burst_attack(ProductId(1), 60.0, 72.0, 50, 19);
  const rating::Dataset attacked = data.with_added(attack);

  OnlineMonitor monitor;
  for (const auto& r : merged_time_ordered(attacked)) monitor.ingest(r);
  monitor.flush();
  std::size_t online_marks = 0;
  for (const Alarm& a : monitor.alarms()) {
    if (a.product == ProductId(1)) online_marks += a.marked_ratings;
  }

  const IntegrationResult offline =
      DetectorIntegrator().analyze(attacked.product(ProductId(1)));
  EXPECT_GT(online_marks, offline.suspicious_count() / 2);
}

}  // namespace
}  // namespace rab::detectors
