// Property sweeps for the detector bank across many random datasets:
// false-positive discipline on clean data and detection power on planted
// bursts must hold for every seed, not just a lucky one.
#include <gtest/gtest.h>

#include <algorithm>

#include "detectors/integrator.hpp"
#include "rating/fair_generator.hpp"
#include "util/rng.hpp"

namespace rab::detectors {
namespace {

rating::ProductRatings fair_stream(std::uint64_t seed) {
  rating::FairDataConfig config;
  config.product_count = 1;
  config.history_days = 150.0;
  config.seed = seed;
  return rating::FairDataGenerator(config).generate_product(ProductId(1));
}

rating::ProductRatings with_burst(const rating::ProductRatings& fair,
                                  double value, double begin, double end,
                                  std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  rating::ProductRatings out = fair;
  for (std::size_t i = 0; i < count; ++i) {
    rating::Rating r;
    r.time = rng.uniform(begin, end);
    r.value = value;
    r.rater = RaterId(1'000'000 + static_cast<std::int64_t>(i));
    r.product = fair.product();
    r.unfair = true;
    out.add(r);
  }
  return out;
}

double hit_rate(const rating::ProductRatings& stream,
                const IntegrationResult& result, bool unfair) {
  std::size_t n = 0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (stream.at(i).unfair != unfair) continue;
    ++n;
    if (result.suspicious[i]) ++hits;
  }
  return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
}

class DetectorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectorSeedSweep, CleanStreamFalsePositivesBounded) {
  const auto stream = fair_stream(GetParam());
  const IntegrationResult result = DetectorIntegrator().analyze(stream);
  // Raw marks, not removals: natural drift occasionally makes MC and ARC
  // agree, so a clean stream can see up to ~1/5 of its ratings marked on
  // an unlucky seed. The trust gate keeps those marks harmless (honest
  // raters stay above the removal threshold); what matters here is that
  // marking never runs away.
  EXPECT_LT(hit_rate(stream, result, /*unfair=*/false), 0.22)
      << "seed " << GetParam();
}

TEST_P(DetectorSeedSweep, DowngradeBurstMostlyCaught) {
  const auto fair = fair_stream(GetParam());
  const auto attacked =
      with_burst(fair, 0.0, 60.0, 72.0, 50, GetParam() * 31 + 7);
  const IntegrationResult result = DetectorIntegrator().analyze(attacked);
  EXPECT_GT(hit_rate(attacked, result, /*unfair=*/true), 0.5)
      << "seed " << GetParam();
}

TEST_P(DetectorSeedSweep, DetectorCurvesAreFiniteAndSized) {
  const auto stream = fair_stream(GetParam());
  const IntegrationResult result = DetectorIntegrator().analyze(stream);
  EXPECT_EQ(result.mc.curve.size(), stream.size());
  EXPECT_EQ(result.hc.curve.size(), stream.size());
  EXPECT_EQ(result.me.curve.size(), stream.size());
  for (const auto* curve :
       {&result.mc.curve, &result.harc.curve, &result.larc.curve,
        &result.hc.curve, &result.me.curve}) {
    for (const auto& point : *curve) {
      EXPECT_TRUE(std::isfinite(point.value));
      EXPECT_GE(point.value, 0.0);
    }
  }
}

TEST_P(DetectorSeedSweep, SuspiciousIntervalsInsideSpan) {
  const auto fair = fair_stream(GetParam());
  const auto attacked =
      with_burst(fair, 0.0, 60.0, 72.0, 50, GetParam() * 13 + 3);
  const IntegrationResult result = DetectorIntegrator().analyze(attacked);
  const Interval span = attacked.span();
  for (const auto* detection :
       {&result.mc, &result.harc, &result.larc, &result.hc, &result.me}) {
    for (const Interval& iv : detection->suspicious) {
      EXPECT_GE(iv.begin, span.begin - 1.0);
      EXPECT_LE(iv.end, span.end + 1.0);
      EXPECT_FALSE(iv.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorSeedSweep,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u, 808u));

/// Degenerate-input robustness: the pipeline must survive pathological
/// streams without throwing or producing nonsense.
class DegenerateStreams : public ::testing::Test {};

TEST_F(DegenerateStreams, SingleRating) {
  rating::ProductRatings stream(ProductId(1));
  rating::Rating r;
  r.time = 1.0;
  r.value = 4.0;
  r.rater = RaterId(1);
  r.product = ProductId(1);
  stream.add(r);
  const IntegrationResult result = DetectorIntegrator().analyze(stream);
  EXPECT_EQ(result.suspicious.size(), 1u);
  EXPECT_FALSE(result.suspicious[0]);
}

TEST_F(DegenerateStreams, AllSameInstant) {
  rating::ProductRatings stream(ProductId(1));
  for (int i = 0; i < 60; ++i) {
    rating::Rating r;
    r.time = 10.0;
    r.value = static_cast<double>(i % 6);
    r.rater = RaterId(i);
    r.product = ProductId(1);
    stream.add(r);
  }
  EXPECT_NO_THROW((void)DetectorIntegrator().analyze(stream));
}

TEST_F(DegenerateStreams, AllIdenticalValues) {
  Rng rng(3);
  rating::ProductRatings stream(ProductId(1));
  for (int i = 0; i < 200; ++i) {
    rating::Rating r;
    r.time = rng.uniform(0.0, 100.0);
    r.value = 4.0;
    r.rater = RaterId(i);
    r.product = ProductId(1);
    stream.add(r);
  }
  const IntegrationResult result = DetectorIntegrator().analyze(stream);
  EXPECT_EQ(result.suspicious_count(), 0u);
}

TEST_F(DegenerateStreams, ExtremeOnlyStream) {
  // A product rated only 0s and 5s — legal data, no crash, finite curves.
  Rng rng(5);
  rating::ProductRatings stream(ProductId(1));
  for (int i = 0; i < 150; ++i) {
    rating::Rating r;
    r.time = rng.uniform(0.0, 100.0);
    r.value = rng.bernoulli(0.5) ? 0.0 : 5.0;
    r.rater = RaterId(i);
    r.product = ProductId(1);
    stream.add(r);
  }
  const IntegrationResult result = DetectorIntegrator().analyze(stream);
  for (const auto& point : result.mc.curve) {
    EXPECT_TRUE(std::isfinite(point.value));
  }
}

TEST_F(DegenerateStreams, VeryShortHistory) {
  const auto stream = [] {
    rating::FairDataConfig config;
    config.product_count = 1;
    config.history_days = 3.0;
    return rating::FairDataGenerator(config).generate_product(ProductId(1));
  }();
  EXPECT_NO_THROW((void)DetectorIntegrator().analyze(stream));
}

}  // namespace
}  // namespace rab::detectors
