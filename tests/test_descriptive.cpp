// Tests for stats/descriptive: Welford accumulation, summaries, quantiles.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab::stats {
namespace {

TEST(Welford, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Welford, SingleValue) {
  Welford w;
  w.add(3.0);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Welford, KnownSequence) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(w.stddev(), 2.0);
}

TEST(Welford, SampleVarianceUsesNMinusOne) {
  Welford w;
  for (double x : {1.0, 2.0, 3.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.sample_variance(), 1.0);
  EXPECT_DOUBLE_EQ(w.variance(), 2.0 / 3.0);
}

TEST(Welford, NumericallyStableOnLargeOffset) {
  Welford w;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) w.add(x);
  EXPECT_NEAR(w.mean(), offset + 2.0, 1e-6);
  EXPECT_NEAR(w.sample_variance(), 1.0, 1e-6);
}

TEST(Welford, MergeMatchesSequential) {
  Rng rng(3);
  Welford all;
  Welford a;
  Welford b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.gaussian(1.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
}

TEST(Welford, MergeWithEmpty) {
  Welford a;
  a.add(1.0);
  a.add(3.0);
  Welford empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  Welford target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, TracksMinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0, 2.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, -1.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.75);
}

TEST(Mean, EmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Mean, Basic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Median, OddCount) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Median, EvenCountAverages) {
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Median, ThrowsOnEmpty) {
  EXPECT_THROW(median({}), Error);
}

TEST(Quantile, Endpoints) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
}

TEST(Quantile, RejectsBadProbability) {
  EXPECT_THROW(quantile({1.0}, 1.5), Error);
  EXPECT_THROW(quantile({1.0}, -0.1), Error);
}

/// Property sweep: quantile is monotone in q, and median == quantile(0.5).
class QuantileSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantileSweep, MonotoneInProbability) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  const int n = 5 + GetParam() * 7;
  for (int i = 0; i < n; ++i) xs.push_back(rng.gaussian(0.0, 3.0));

  double prev = quantile(xs, 0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = quantile(xs, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(median(xs), quantile(xs, 0.5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileSweep, ::testing::Range(1, 11));

/// Property sweep: Welford matches the two-pass computation.
class WelfordSweep : public ::testing::TestWithParam<int> {};

TEST_P(WelfordSweep, MatchesTwoPass) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101);
  std::vector<double> xs;
  const int n = 10 + GetParam() * 31;
  Welford w;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    xs.push_back(x);
    w.add(x);
  }
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mu = sum / n;
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  EXPECT_NEAR(w.mean(), mu, 1e-10);
  EXPECT_NEAR(w.variance(), ss / n, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WelfordSweep, ::testing::Range(1, 11));

}  // namespace
}  // namespace rab::stats
