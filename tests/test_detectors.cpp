// Behavioral tests for the four detectors and the Figure-1 integrator.
#include <gtest/gtest.h>

#include <algorithm>

#include "detectors/arc_detector.hpp"
#include "detectors/hc_detector.hpp"
#include "detectors/integrator.hpp"
#include "detectors/mc_detector.hpp"
#include "detectors/me_detector.hpp"
#include "rating/fair_generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab::detectors {
namespace {

/// One product of fair history.
rating::ProductRatings fair_stream(std::uint64_t seed = 1,
                                   double days = 150.0, double mean = 4.0) {
  rating::FairDataConfig config;
  config.product_count = 1;
  config.history_days = days;
  config.seed = seed;
  config.mean_value = mean;
  return rating::FairDataGenerator(config).generate_product(ProductId(1));
}

/// Adds `count` unfair ratings with values ~N(value, sigma) (clamped,
/// rounded) uniformly over [begin, end).
rating::ProductRatings with_attack(const rating::ProductRatings& fair,
                                   double value, double sigma, double begin,
                                   double end, std::size_t count,
                                   std::uint64_t seed = 77) {
  Rng rng(seed);
  rating::ProductRatings out = fair;
  std::vector<rating::Rating> rs;
  for (std::size_t i = 0; i < count; ++i) {
    rating::Rating r;
    r.time = rng.uniform(begin, end);
    r.value = std::round(std::clamp(rng.gaussian(value, sigma),
                                    rating::kMinRating, rating::kMaxRating));
    r.rater = RaterId(1'000'000 + static_cast<std::int64_t>(i));
    r.product = fair.product();
    r.unfair = true;
    out.add(r);
  }
  return out;
}

/// Fraction of the stream's unfair ratings flagged by `result`.
double unfair_hit_rate(const rating::ProductRatings& stream,
                       const IntegrationResult& result) {
  std::size_t unfair = 0;
  std::size_t hit = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (!stream.at(i).unfair) continue;
    ++unfair;
    if (result.suspicious[i]) ++hit;
  }
  return unfair == 0 ? 0.0 : static_cast<double>(hit) / unfair;
}

/// Fraction of fair ratings flagged (false positives).
double fair_hit_rate(const rating::ProductRatings& stream,
                     const IntegrationResult& result) {
  std::size_t fair = 0;
  std::size_t hit = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (stream.at(i).unfair) continue;
    ++fair;
    if (result.suspicious[i]) ++hit;
  }
  return fair == 0 ? 0.0 : static_cast<double>(hit) / fair;
}

// --------------------------------------------------------- MC detector

TEST(MeanChange, CleanStreamMostlyQuiet) {
  const auto stream = fair_stream(11);
  const DetectionResult result = MeanChangeDetector().detect(stream);
  // Fair data has drift but no large coordinated shift: little or nothing
  // should be marked.
  double marked_days = 0.0;
  for (const Interval& iv : result.suspicious) marked_days += iv.length();
  EXPECT_LT(marked_days, 0.25 * stream.span().length());
}

TEST(MeanChange, DetectsLowValueBurst) {
  const auto fair = fair_stream(12);
  const auto attacked = with_attack(fair, 1.0, 0.2, 60.0, 75.0, 50);
  const DetectionResult result = MeanChangeDetector().detect(attacked);
  ASSERT_FALSE(result.suspicious.empty());
  // Some suspicious interval should overlap the attack.
  EXPECT_TRUE(result.overlaps(Interval{60.0, 75.0}));
}

TEST(MeanChange, CurveHasOnePointPerRating) {
  const auto stream = fair_stream(13, 60.0);
  const auto curve = MeanChangeDetector().indicator_curve(stream);
  EXPECT_EQ(curve.size(), stream.size());
}

TEST(MeanChange, CurvePeaksNearChangePoint) {
  const auto fair = fair_stream(14);
  const auto attacked = with_attack(fair, 0.5, 0.1, 70.0, 90.0, 60);
  const auto curve = MeanChangeDetector().indicator_curve(attacked);
  // The maximum statistic should sit near the attack boundaries.
  const auto max_it =
      std::max_element(curve.begin(), curve.end(),
                       [](const auto& a, const auto& b) {
                         return a.value < b.value;
                       });
  ASSERT_NE(max_it, curve.end());
  EXPECT_GT(max_it->value, MeanChangeDetector().config().glrt_threshold);
  EXPECT_GT(max_it->time, 55.0);
  EXPECT_LT(max_it->time, 105.0);
}

TEST(MeanChange, TrustConditionFlagsModerateChange) {
  const auto fair = fair_stream(15);
  // Moderate shift that stays under threshold1 but above threshold2.
  const auto attacked = with_attack(fair, 3.3, 0.1, 60.0, 80.0, 55);

  McConfig config;
  const MeanChangeDetector detector(config);

  const DetectionResult no_trust = detector.detect(attacked);

  // With a trust lookup that distrusts the attackers, condition 2 fires.
  const TrustLookup lookup = [](RaterId id) {
    return id.value() >= 1'000'000 ? 0.05 : 0.9;
  };
  const DetectionResult with_trust = detector.detect(attacked, lookup);

  double days_no_trust = 0.0;
  for (const Interval& iv : no_trust.suspicious) days_no_trust += iv.length();
  double days_with_trust = 0.0;
  for (const Interval& iv : with_trust.suspicious) {
    days_with_trust += iv.length();
  }
  EXPECT_GE(days_with_trust, days_no_trust);
}

TEST(MeanChange, RejectsInconsistentThresholds) {
  McConfig config;
  config.threshold1 = 0.1;
  config.threshold2 = 0.5;
  EXPECT_THROW(MeanChangeDetector{config}, Error);
}

// --------------------------------------------------------- ARC detector

TEST(ArrivalRate, CleanStreamQuiet) {
  const auto stream = fair_stream(21);
  const ArrivalRateDetector detector(ArcConfig{}, ArcMode::kAll);
  const DetectionResult result = detector.detect(stream);
  double marked_days = 0.0;
  for (const Interval& iv : result.suspicious) marked_days += iv.length();
  EXPECT_LT(marked_days, 0.2 * stream.span().length());
}

TEST(ArrivalRate, DetectsBurst) {
  const auto fair = fair_stream(22);
  // 50 extra ratings in 10 days is a strong arrival jump over rate ~3/day.
  const auto attacked = with_attack(fair, 1.0, 0.3, 60.0, 70.0, 50);
  const ArrivalRateDetector detector(ArcConfig{}, ArcMode::kAll);
  const DetectionResult result = detector.detect(attacked);
  EXPECT_TRUE(result.overlaps(Interval{58.0, 72.0}));
}

TEST(ArrivalRate, LArcSeesLowRatingsOnly) {
  const auto fair = fair_stream(23);
  const auto attacked = with_attack(fair, 0.5, 0.3, 60.0, 70.0, 50);
  const ArrivalRateDetector low(ArcConfig{}, ArcMode::kLow);
  const ArrivalRateDetector high(ArcConfig{}, ArcMode::kHigh);
  EXPECT_TRUE(low.detect(attacked).overlaps(Interval{58.0, 72.0}));
  // The attack added no high ratings, so it must not *change* H-ARC's
  // verdict over the attack window. (H-ARC may fire there on its own:
  // the fair mean drifts, which genuinely modulates the 5-star rate —
  // the non-stationarity the paper warns single detectors about.)
  EXPECT_EQ(high.detect(attacked).overlaps(Interval{58.0, 72.0}),
            high.detect(fair).overlaps(Interval{58.0, 72.0}));
}

TEST(ArrivalRate, HArcSeesBoostBurst) {
  const auto fair = fair_stream(24);
  const auto attacked = with_attack(fair, 5.0, 0.1, 40.0, 50.0, 50);
  const ArrivalRateDetector high(ArcConfig{}, ArcMode::kHigh);
  EXPECT_TRUE(high.detect(attacked).overlaps(Interval{38.0, 52.0}));
}

TEST(ArrivalRate, EmptyStream) {
  rating::ProductRatings empty(ProductId(1));
  const ArrivalRateDetector detector(ArcConfig{}, ArcMode::kAll);
  const DetectionResult result = detector.detect(empty);
  EXPECT_TRUE(result.curve.empty());
  EXPECT_TRUE(result.suspicious.empty());
}

TEST(ArrivalRate, RejectsBadConfig) {
  ArcConfig config;
  config.window_days = 1.0;
  EXPECT_THROW(ArrivalRateDetector(config, ArcMode::kAll), Error);
}

// --------------------------------------------------------- HC detector

TEST(HistogramChange, CleanStreamLowCurve) {
  const auto stream = fair_stream(31);
  const HistogramDetector detector;
  const DetectionResult result = detector.detect(stream);
  double marked_days = 0.0;
  for (const Interval& iv : result.suspicious) marked_days += iv.length();
  EXPECT_LT(marked_days, 0.25 * stream.span().length());
}

TEST(HistogramChange, DetectsSecondMode) {
  const auto fair = fair_stream(32);
  // A detached low mode: values near 1 while fair ratings sit at 3-5.
  const auto attacked = with_attack(fair, 1.0, 0.1, 60.0, 80.0, 60);
  const HistogramDetector detector;
  EXPECT_TRUE(detector.detect(attacked).overlaps(Interval{58.0, 82.0}));
}

TEST(HistogramChange, LargeVarianceAttackEvades) {
  const auto fair = fair_stream(33);
  // Wide-spread attack values bridge the gap to the fair mode; the cluster
  // split sees no separating gap (this is why R3 attacks beat the HC part).
  const auto attacked = with_attack(fair, 2.0, 1.6, 60.0, 80.0, 50,
                                    /*seed=*/5);
  const HistogramDetector detector;
  const DetectionResult clean = detector.detect(fair);
  const DetectionResult dirty = detector.detect(attacked);
  double clean_days = 0.0;
  for (const Interval& iv : clean.suspicious) clean_days += iv.length();
  double dirty_days = 0.0;
  for (const Interval& iv : dirty.suspicious) dirty_days += iv.length();
  EXPECT_LT(dirty_days, clean_days + 12.0);
}

TEST(HistogramChange, CurveValuesInUnitInterval) {
  const auto stream = fair_stream(34, 80.0);
  for (const auto& point : HistogramDetector().indicator_curve(stream)) {
    EXPECT_GE(point.value, 0.0);
    EXPECT_LE(point.value, 1.0);
  }
}

TEST(HistogramChange, RejectsBadConfig) {
  HcConfig config;
  config.window_ratings = 2;
  EXPECT_THROW(HistogramDetector{config}, Error);
  config = HcConfig{};
  config.threshold = 0.0;
  EXPECT_THROW(HistogramDetector{config}, Error);
}

// --------------------------------------------------------- ME detector

TEST(ModelError, CleanStreamHighError) {
  const auto stream = fair_stream(41);
  const auto curve = ModelErrorDetector().indicator_curve(stream);
  double sum = 0.0;
  for (const auto& p : curve) sum += p.value;
  EXPECT_GT(sum / static_cast<double>(curve.size()), 0.5);
}

TEST(ModelError, ConstantAttackBlockLowersError) {
  const auto fair = fair_stream(42);
  // A dense block of identical values is maximally predictable: the ME
  // curve's minimum should fall near the block and dip below the fair
  // stream's minimum.
  const auto attacked = with_attack(fair, 1.0, 0.0, 60.0, 66.0, 55);
  const ModelErrorDetector detector;

  auto curve_min = [](const signal::Curve& curve) {
    double best = 1.0;
    Day at = 0.0;
    for (const auto& p : curve) {
      if (p.value < best) {
        best = p.value;
        at = p.time;
      }
    }
    return std::pair{best, at};
  };
  const auto [fair_min, fair_at] =
      curve_min(detector.indicator_curve(fair));
  const auto [attacked_min, attacked_at] =
      curve_min(detector.indicator_curve(attacked));
  EXPECT_LT(attacked_min, fair_min);
  EXPECT_GT(attacked_at, 55.0);
  EXPECT_LT(attacked_at, 72.0);
}

TEST(ModelError, RejectsBadConfig) {
  MeConfig config;
  config.ar_order = 0;
  EXPECT_THROW(ModelErrorDetector{config}, Error);
}

// --------------------------------------------------------- Integrator

TEST(Integrator, EmptyStream) {
  rating::ProductRatings empty(ProductId(1));
  const IntegrationResult result = DetectorIntegrator().analyze(empty);
  EXPECT_TRUE(result.suspicious.empty());
  EXPECT_EQ(result.suspicious_count(), 0u);
}

TEST(Integrator, FairStreamFewFalsePositives) {
  const auto stream = fair_stream(51);
  const IntegrationResult result = DetectorIntegrator().analyze(stream);
  EXPECT_LT(fair_hit_rate(stream, result), 0.12);
}

TEST(Integrator, CatchesNaiveDowngradeAttack) {
  const auto fair = fair_stream(52);
  const auto attacked = with_attack(fair, 0.5, 0.2, 60.0, 70.0, 50);
  const IntegrationResult result = DetectorIntegrator().analyze(attacked);
  EXPECT_GT(unfair_hit_rate(attacked, result), 0.6);
  EXPECT_LT(fair_hit_rate(attacked, result), 0.2);
}

TEST(Integrator, CatchesNaiveBoostAttackWithHeadroom) {
  // Boosting only has statistical room when the fair mean is not already
  // pinned at the scale's top (the paper makes the same observation); with
  // a mean-3 product an all-5s burst is a clear joint MC + H-ARC signature.
  const auto fair = fair_stream(53, 150.0, /*mean=*/3.0);
  const auto attacked = with_attack(fair, 5.0, 0.0, 40.0, 50.0, 50);
  const IntegrationResult result = DetectorIntegrator().analyze(attacked);
  EXPECT_GT(unfair_hit_rate(attacked, result), 0.4);
}

TEST(Integrator, CeilingBoostIsInherentlyMild) {
  // Against a mean-4 product the same burst barely moves any statistic —
  // the reason the paper reports boosting "has no much room".
  const auto fair = fair_stream(53);
  const auto attacked = with_attack(fair, 5.0, 0.0, 40.0, 50.0, 50);
  const IntegrationResult result = DetectorIntegrator().analyze(attacked);
  // The arrival alarm still fires even if value-domain confirmation fails.
  EXPECT_TRUE(result.harc.overlaps(Interval{38.0, 52.0}));
}

TEST(Integrator, HighVarianceAttackEvadesBetter) {
  const auto fair = fair_stream(54);
  const auto tight =
      with_attack(fair, 1.6, 0.1, 60.0, 95.0, 50, /*seed=*/7);
  const auto wide =
      with_attack(fair, 1.6, 1.5, 60.0, 95.0, 50, /*seed=*/7);
  const DetectorIntegrator integrator;
  const double tight_rate =
      unfair_hit_rate(tight, integrator.analyze(tight));
  const double wide_rate = unfair_hit_rate(wide, integrator.analyze(wide));
  // The paper's key finding: large variance weakens the signal features.
  EXPECT_LE(wide_rate, tight_rate);
}

TEST(Integrator, TogglesDisableDetectors) {
  const auto fair = fair_stream(55);
  const auto attacked = with_attack(fair, 0.5, 0.2, 60.0, 70.0, 50);
  DetectorToggles none;
  none.use_mc = false;
  none.use_arc = false;
  none.use_hc = false;
  none.use_me = false;
  const IntegrationResult result =
      DetectorIntegrator(DetectorConfig{}, none).analyze(attacked);
  EXPECT_EQ(result.suspicious_count(), 0u);
}

TEST(Integrator, ArcAloneInsufficient) {
  // Path structure: without any value-domain confirmation (MC/HC/ME), an
  // arrival-rate change alone must not mark ratings.
  const auto fair = fair_stream(56);
  const auto attacked = with_attack(fair, 0.5, 0.2, 60.0, 70.0, 50);
  DetectorToggles only_arc;
  only_arc.use_mc = false;
  only_arc.use_hc = false;
  only_arc.use_me = false;
  const IntegrationResult result =
      DetectorIntegrator(DetectorConfig{}, only_arc).analyze(attacked);
  EXPECT_EQ(result.suspicious_count(), 0u);
}

TEST(Integrator, SplitThresholdsBracketTheMean) {
  const auto stream = fair_stream(57);
  const IntegrationResult result = DetectorIntegrator().analyze(stream);
  // threshold_a = m + 0.5, threshold_b = m - 0.5 with m ~ 4 (see the
  // ValueSplit discussion: the paper's printed 0.5*m formula is read as a
  // typo).
  EXPECT_NEAR(result.split.threshold_a, 4.5, 0.35);
  EXPECT_NEAR(result.split.threshold_b, 3.5, 0.35);
}

TEST(Integrator, SuspicionVectorMatchesStreamSize) {
  const auto fair = fair_stream(58, 90.0);
  const IntegrationResult result = DetectorIntegrator().analyze(fair);
  EXPECT_EQ(result.suspicious.size(), fair.size());
}

}  // namespace
}  // namespace rab::detectors
