// Tests for the rolling prefix statistics against Welford ground truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "signal/rolling.hpp"
#include "stats/descriptive.hpp"
#include "stats/glrt.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab::signal {
namespace {

std::vector<Sample> rating_like_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Sample{static_cast<double>(i),
                         std::clamp(rng.gaussian(4.0, 0.8), 0.0, 5.0)});
  }
  return out;
}

stats::Moments welford_moments(std::span<const Sample> samples,
                               const IndexRange& range) {
  stats::Welford acc;
  for (std::size_t i = range.first; i < range.last; ++i) {
    acc.add(samples[i].value);
  }
  return stats::Moments{acc.count(), acc.mean(), acc.variance()};
}

TEST(RollingStats, MatchesWelfordOnRandomRanges) {
  const auto samples = rating_like_samples(400, 11);
  const RollingStats rolling{std::span<const Sample>(samples)};
  ASSERT_EQ(rolling.size(), samples.size());

  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, 399));
    const auto b = static_cast<std::size_t>(rng.uniform_int(0, 400));
    const IndexRange range{std::min(a, b), std::max(a, b)};
    const stats::Moments truth = welford_moments(samples, range);
    const stats::Moments fast = rolling.moments(range);
    EXPECT_EQ(fast.count, truth.count);
    EXPECT_NEAR(fast.mean, truth.mean, 1e-10);
    EXPECT_NEAR(fast.variance, truth.variance, 1e-9);
  }
}

TEST(RollingStats, SumMatchesDirectSummation) {
  const auto samples = rating_like_samples(100, 7);
  const RollingStats rolling{std::span<const Sample>(samples)};
  double direct = 0.0;
  for (std::size_t i = 20; i < 80; ++i) direct += samples[i].value;
  EXPECT_NEAR(rolling.sum(IndexRange{20, 80}), direct, 1e-10);
  EXPECT_DOUBLE_EQ(rolling.sum(IndexRange{50, 50}), 0.0);
}

TEST(RollingStats, EmptyRangeIsAllZero) {
  const auto samples = rating_like_samples(10, 3);
  const RollingStats rolling{std::span<const Sample>(samples)};
  const stats::Moments m = rolling.moments(IndexRange{4, 4});
  EXPECT_EQ(m.count, 0u);
  EXPECT_DOUBLE_EQ(m.mean, 0.0);
  EXPECT_DOUBLE_EQ(m.variance, 0.0);
}

TEST(RollingStats, ValueSpanConstructorAgreesWithSampleConstructor) {
  const auto samples = rating_like_samples(50, 5);
  std::vector<double> values;
  for (const Sample& s : samples) values.push_back(s.value);
  const RollingStats from_samples{std::span<const Sample>(samples)};
  const RollingStats from_values{std::span<const double>(values)};
  const IndexRange range{10, 45};
  EXPECT_DOUBLE_EQ(from_samples.sum(range), from_values.sum(range));
  const stats::Moments a = from_samples.moments(range);
  const stats::Moments b = from_values.moments(range);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.variance, b.variance);
}

TEST(RollingStats, OutOfRangeThrows) {
  const auto samples = rating_like_samples(10, 1);
  const RollingStats rolling{std::span<const Sample>(samples)};
  EXPECT_THROW((void)rolling.sum(IndexRange{0, 11}), Error);
  EXPECT_THROW((void)rolling.moments(IndexRange{0, 11}), Error);
}

TEST(RollingStats, DefaultConstructedIsEmpty) {
  const RollingStats rolling;
  EXPECT_EQ(rolling.size(), 0u);
}

TEST(RollingGlrt, MomentPathMatchesSpanPath) {
  const auto samples = rating_like_samples(200, 17);
  const RollingStats rolling{std::span<const Sample>(samples)};
  const stats::GaussianMeanGlrt glrt(5.0);

  std::vector<double> values;
  for (const Sample& s : samples) values.push_back(s.value);
  for (std::size_t split = 10; split < 190; split += 7) {
    const IndexRange left{split - 10, split};
    const IndexRange right{split, split + 10};
    const double via_spans = glrt.statistic(
        std::span<const double>(values).subspan(left.first, left.size()),
        std::span<const double>(values).subspan(right.first, right.size()));
    const double via_moments =
        glrt.statistic(rolling.moments(left), rolling.moments(right));
    EXPECT_NEAR(via_moments, via_spans, 1e-9 * std::max(1.0, via_spans));
  }
}

TEST(RollingGlrt, PoissonSumPathMatchesSpanPath) {
  Rng rng(29);
  std::vector<double> counts;
  for (int i = 0; i < 120; ++i) {
    counts.push_back(static_cast<double>(rng.poisson(3.0)));
  }
  const RollingStats rolling{std::span<const double>(counts)};
  for (std::size_t k = 10; k + 10 <= counts.size(); k += 5) {
    const std::span<const double> y1(counts.data() + (k - 10), 10);
    const std::span<const double> y2(counts.data() + k, 10);
    const double via_spans = stats::PoissonRateGlrt::statistic(y1, y2);
    const double via_sums = stats::PoissonRateGlrt::statistic_from_sums(
        10.0, rolling.sum(IndexRange{k - 10, k}), 10.0,
        rolling.sum(IndexRange{k, k + 10}));
    // Counts are integer-valued doubles: both sums are exact, so the two
    // paths agree bit-for-bit.
    EXPECT_DOUBLE_EQ(via_sums, via_spans);
  }
}

}  // namespace
}  // namespace rab::signal
