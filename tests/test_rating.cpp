// Tests for the rating domain: streams, datasets, CSV io.
#include <gtest/gtest.h>

#include <sstream>

#include "rating/dataset.hpp"
#include "rating/io.hpp"
#include "rating/product_ratings.hpp"
#include "util/error.hpp"

namespace rab::rating {
namespace {

Rating make(double time, double value, std::int64_t rater,
            std::int64_t product = 1, bool unfair = false) {
  Rating r;
  r.time = time;
  r.value = value;
  r.rater = RaterId(rater);
  r.product = ProductId(product);
  r.unfair = unfair;
  return r;
}

// ------------------------------------------------------ ProductRatings

TEST(ProductRatings, AddKeepsTimeOrder) {
  ProductRatings stream(ProductId(1));
  stream.add(make(5.0, 4.0, 1));
  stream.add(make(1.0, 3.0, 2));
  stream.add(make(3.0, 5.0, 3));
  ASSERT_EQ(stream.size(), 3u);
  EXPECT_DOUBLE_EQ(stream.at(0).time, 1.0);
  EXPECT_DOUBLE_EQ(stream.at(1).time, 3.0);
  EXPECT_DOUBLE_EQ(stream.at(2).time, 5.0);
}

TEST(ProductRatings, AddAllSorts) {
  ProductRatings stream(ProductId(1));
  std::vector<Rating> rs{make(5.0, 4.0, 1), make(1.0, 3.0, 2)};
  stream.add_all(rs);
  EXPECT_DOUBLE_EQ(stream.at(0).time, 1.0);
}

TEST(ProductRatings, RejectsWrongProduct) {
  ProductRatings stream(ProductId(1));
  EXPECT_THROW(stream.add(make(0.0, 4.0, 1, /*product=*/2)), Error);
}

TEST(ProductRatings, DefaultConstructedAdoptsFirstProduct) {
  ProductRatings stream;
  stream.add(make(0.0, 4.0, 1, 7));
  EXPECT_EQ(stream.product(), ProductId(7));
  EXPECT_THROW(stream.add(make(1.0, 4.0, 1, 8)), Error);
}

TEST(ProductRatings, SpanCoversAllRatings) {
  ProductRatings stream(ProductId(1));
  stream.add(make(2.0, 4.0, 1));
  stream.add(make(9.0, 4.0, 2));
  const Interval span = stream.span();
  EXPECT_DOUBLE_EQ(span.begin, 2.0);
  EXPECT_TRUE(span.contains(9.0));  // right edge inclusive via nextafter
}

TEST(ProductRatings, EmptySpanIsEmpty) {
  ProductRatings stream(ProductId(1));
  EXPECT_TRUE(stream.span().empty());
}

TEST(ProductRatings, ValuesInTimeOrder) {
  ProductRatings stream(ProductId(1));
  stream.add(make(2.0, 5.0, 1));
  stream.add(make(1.0, 3.0, 2));
  const auto values = stream.values();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 3.0);
  EXPECT_DOUBLE_EQ(values[1], 5.0);
}

TEST(ProductRatings, InInterval) {
  ProductRatings stream(ProductId(1));
  for (int i = 0; i < 10; ++i) stream.add(make(i, 4.0, i));
  const auto rs = stream.in_interval(Interval{3.0, 6.0});
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_DOUBLE_EQ(rs.front().time, 3.0);
  EXPECT_DOUBLE_EQ(rs.back().time, 5.0);
}

TEST(ProductRatings, IndexRangeHalfOpen) {
  ProductRatings stream(ProductId(1));
  for (int i = 0; i < 5; ++i) stream.add(make(i, 4.0, i));
  const auto range = stream.index_range(Interval{1.0, 3.0});
  EXPECT_EQ(range.first, 1u);
  EXPECT_EQ(range.last, 3u);
}

TEST(ProductRatings, FairOnlyStripsUnfair) {
  ProductRatings stream(ProductId(1));
  stream.add(make(0.0, 4.0, 1, 1, false));
  stream.add(make(1.0, 0.0, 2, 1, true));
  stream.add(make(2.0, 4.0, 3, 1, false));
  const ProductRatings fair = stream.fair_only();
  EXPECT_EQ(fair.size(), 2u);
  for (const Rating& r : fair.rows()) EXPECT_FALSE(r.unfair);
}

TEST(ProductRatings, WithoutIndices) {
  ProductRatings stream(ProductId(1));
  for (int i = 0; i < 5; ++i) stream.add(make(i, i, i));
  const std::vector<std::size_t> drop{1, 3};
  const ProductRatings kept = stream.without_indices(drop);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_DOUBLE_EQ(kept.at(0).value, 0.0);
  EXPECT_DOUBLE_EQ(kept.at(1).value, 2.0);
  EXPECT_DOUBLE_EQ(kept.at(2).value, 4.0);
}

TEST(ProductRatings, WithoutIndicesRejectsOutOfRange) {
  ProductRatings stream(ProductId(1));
  stream.add(make(0.0, 4.0, 1));
  const std::vector<std::size_t> drop{5};
  EXPECT_THROW(stream.without_indices(drop), Error);
}

// ------------------------------------------------------ Dataset

TEST(Dataset, GroupsByProduct) {
  Dataset data;
  data.add(make(0.0, 4.0, 1, 1));
  data.add(make(1.0, 3.0, 2, 2));
  data.add(make(2.0, 5.0, 3, 1));
  EXPECT_EQ(data.product_count(), 2u);
  EXPECT_EQ(data.total_ratings(), 3u);
  EXPECT_EQ(data.product(ProductId(1)).size(), 2u);
}

TEST(Dataset, ProductIdsSorted) {
  Dataset data;
  data.add(make(0.0, 4.0, 1, 9));
  data.add(make(0.0, 4.0, 1, 2));
  const auto ids = data.product_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], ProductId(2));
  EXPECT_EQ(ids[1], ProductId(9));
}

TEST(Dataset, UnknownProductThrows) {
  Dataset data;
  EXPECT_THROW((void)data.product(ProductId(1)), InvalidArgument);
  EXPECT_FALSE(data.has_product(ProductId(1)));
}

TEST(Dataset, SpanUnionAcrossProducts) {
  Dataset data;
  data.add(make(5.0, 4.0, 1, 1));
  data.add(make(1.0, 4.0, 1, 2));
  data.add(make(9.0, 4.0, 1, 2));
  const Interval span = data.span();
  EXPECT_DOUBLE_EQ(span.begin, 1.0);
  EXPECT_TRUE(span.contains(9.0));
}

TEST(Dataset, RaterIdsDistinctSorted) {
  Dataset data;
  data.add(make(0.0, 4.0, 5, 1));
  data.add(make(1.0, 4.0, 2, 1));
  data.add(make(2.0, 4.0, 5, 2));
  const auto raters = data.rater_ids();
  ASSERT_EQ(raters.size(), 2u);
  EXPECT_EQ(raters[0], RaterId(2));
  EXPECT_EQ(raters[1], RaterId(5));
}

TEST(Dataset, FairOnly) {
  Dataset data;
  data.add(make(0.0, 4.0, 1, 1, false));
  data.add(make(1.0, 0.0, 2, 1, true));
  const Dataset fair = data.fair_only();
  EXPECT_EQ(fair.total_ratings(), 1u);
}

TEST(Dataset, WithAddedLeavesOriginalUntouched) {
  Dataset data;
  data.add(make(0.0, 4.0, 1, 1));
  std::vector<Rating> extra{make(1.0, 0.0, 99, 1, true)};
  const Dataset attacked = data.with_added(extra);
  EXPECT_EQ(attacked.total_ratings(), 2u);
  EXPECT_EQ(data.total_ratings(), 1u);
}

// ------------------------------------------------------ io

TEST(Io, RoundTripPreservesRatings) {
  Dataset data;
  data.add(make(0.5, 4.0, 1, 1, false));
  data.add(make(1.25, 0.0, 99, 2, true));
  data.add(make(2.0, 3.0, 7, 1, false));

  std::ostringstream out;
  write_csv(out, data);
  std::istringstream in(out.str());
  const Dataset back = read_csv(in);

  EXPECT_EQ(back.total_ratings(), 3u);
  EXPECT_EQ(back.product_count(), 2u);
  const auto& p1 = back.product(ProductId(1));
  ASSERT_EQ(p1.size(), 2u);
  EXPECT_DOUBLE_EQ(p1.at(0).time, 0.5);
  EXPECT_EQ(p1.at(0).rater, RaterId(1));
  EXPECT_FALSE(p1.at(0).unfair);
  const auto& p2 = back.product(ProductId(2));
  ASSERT_EQ(p2.size(), 1u);
  EXPECT_TRUE(p2.at(0).unfair);
}

TEST(Io, MalformedRowThrows) {
  std::istringstream in("1,2,3\n");
  EXPECT_THROW(read_csv(in), Error);
}

TEST(Io, NonNumericFieldThrows) {
  std::istringstream in("1,abc,0.0,4.0,0\n");
  EXPECT_THROW(read_csv(in), Error);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/data.csv"), Error);
  Dataset empty;
  EXPECT_THROW(write_csv_file("/nonexistent/dir/out.csv", empty), Error);
}

TEST(Io, FourFieldRowsReadAsFair) {
  std::istringstream in("1,2,0.5,4.0\n");
  const Dataset data = read_csv(in);
  ASSERT_EQ(data.total_ratings(), 1u);
  EXPECT_FALSE(data.product(ProductId(1)).at(0).unfair);
}

TEST(Io, NonFiniteTimeOrValueThrows) {
  std::istringstream nan_time("1,2,nan,4.0,0\n");
  EXPECT_THROW(read_csv(nan_time), Error);
  std::istringstream inf_value("1,2,0.5,inf,0\n");
  EXPECT_THROW(read_csv(inf_value), Error);
}

TEST(Io, NegativeIdThrows) {
  // Negative ids collide with the library's "unset id" sentinel and would
  // silently merge distinct products downstream.
  std::istringstream bad_product("-1,2,0.5,4.0,0\n");
  EXPECT_THROW(read_csv(bad_product), Error);
  std::istringstream bad_rater("1,-2,0.5,4.0,0\n");
  EXPECT_THROW(read_csv(bad_rater), Error);
}

TEST(Io, WriteToFailedStreamThrows) {
  Dataset data;
  data.add(make(0.5, 4.0, 1, 1, false));
  std::ostringstream out;
  out.setstate(std::ios::failbit);  // what a full disk looks like
  EXPECT_THROW(write_csv(out, data), Error);
}

// ------------------------------------------------- drop_prefix edge cases

TEST(ProductRatings, DropPrefixZeroIsNoop) {
  ProductRatings stream(ProductId(1));
  stream.add(make(1.0, 3.0, 1));
  stream.add(make(2.0, 4.0, 2));
  stream.drop_prefix(0);
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream.at(0).time, 1.0);
}

TEST(ProductRatings, DropPrefixEverythingLeavesEmptyStream) {
  ProductRatings stream(ProductId(1));
  stream.add(make(1.0, 3.0, 1));
  stream.add(make(2.0, 4.0, 2));
  stream.drop_prefix(2);
  EXPECT_TRUE(stream.empty());
  EXPECT_TRUE(stream.span().empty());
  // The emptied stream is still usable: appends start a fresh history.
  stream.add(make(5.0, 2.0, 3));
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream.at(0).time, 5.0);
}

TEST(ProductRatings, DropPrefixBeyondSizeViolatesPrecondition) {
  ProductRatings stream(ProductId(1));
  stream.add(make(1.0, 3.0, 1));
  EXPECT_THROW(stream.drop_prefix(2), LogicError);
  EXPECT_THROW(ProductRatings(ProductId(2)).drop_prefix(1), LogicError);
}

TEST(ProductRatings, DropPrefixOnDuplicateTimestampRunKeepsTheTail) {
  // Five ratings sharing one timestamp: a boundary that lands inside the
  // run must split it positionally, exactly where the index says, without
  // disturbing the survivors' order.
  ProductRatings stream(ProductId(1));
  for (std::int64_t rater = 1; rater <= 5; ++rater) {
    stream.add(make(10.0, static_cast<double>(rater), rater));
  }
  stream.drop_prefix(2);
  ASSERT_EQ(stream.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(stream.at(i).time, 10.0);
    EXPECT_EQ(stream.at(i).rater, RaterId(static_cast<std::int64_t>(i) + 3));
  }
}

TEST(ProductRatings, DropPrefixMatchesIndexRangeCut) {
  // The monitor compacts by dropping index_range([span.begin, cutoff)).last
  // ratings; dropping that prefix must leave exactly the ratings with
  // time >= cutoff (half-open interval semantics).
  ProductRatings stream(ProductId(1));
  const double times[] = {1.0, 2.0, 3.0, 3.0, 3.0, 4.0, 7.0};
  std::int64_t rater = 1;
  for (const double t : times) stream.add(make(t, 4.0, rater++));

  const double cutoff = 3.0;
  const auto stale = stream.index_range(Interval{stream.span().begin, cutoff});
  EXPECT_EQ(stale.last, 2u);  // strictly-before-cutoff ratings only
  stream.drop_prefix(stale.last);
  ASSERT_EQ(stream.size(), 5u);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_GE(stream.at(i).time, cutoff);
  }
}

}  // namespace
}  // namespace rab::rating
