// Tests for the fixed-range histogram.
#include <gtest/gtest.h>

#include <vector>

#include "stats/histogram.hpp"
#include "util/error.hpp"

namespace rab::stats {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 5.0, 0), Error);
}

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 5.0, 5);
  EXPECT_EQ(h.bin_of(0.0), 0u);
  EXPECT_EQ(h.bin_of(0.99), 0u);
  EXPECT_EQ(h.bin_of(1.0), 1u);
  EXPECT_EQ(h.bin_of(4.99), 4u);
  EXPECT_EQ(h.bin_of(5.0), 4u);  // top edge folds into the last bin
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 5.0, 5);
  h.add(-10.0);
  h.add(99.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, FrequenciesSumToOne) {
  Histogram h(0.0, 5.0, 5);
  const std::vector<double> xs{0.5, 1.5, 1.6, 3.2, 4.9};
  h.add_all(xs);
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) sum += h.frequency(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.frequency(1), 0.4);
}

TEST(Histogram, EmptyFrequencyIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.0);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 5.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 4.5);
}

TEST(Histogram, CountOutOfRangeThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.count(2), Error);
  EXPECT_THROW((void)h.bin_center(5), Error);
}

TEST(Histogram, L1DistanceIdentical) {
  Histogram a(0.0, 5.0, 5);
  Histogram b(0.0, 5.0, 5);
  for (double x : {1.0, 2.0, 3.0}) {
    a.add(x);
    b.add(x);
  }
  EXPECT_DOUBLE_EQ(a.l1_distance(b), 0.0);
}

TEST(Histogram, L1DistanceDisjointIsTwo) {
  Histogram a(0.0, 5.0, 5);
  Histogram b(0.0, 5.0, 5);
  a.add(0.5);
  b.add(4.5);
  EXPECT_DOUBLE_EQ(a.l1_distance(b), 2.0);
}

TEST(Histogram, L1DistanceShapeMismatchThrows) {
  Histogram a(0.0, 5.0, 5);
  Histogram b(0.0, 5.0, 4);
  EXPECT_THROW((void)a.l1_distance(b), Error);
}

}  // namespace
}  // namespace rab::stats
