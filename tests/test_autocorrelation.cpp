// Tests for autocorrelation / correlation utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "signal/autocorrelation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab::signal {
namespace {

TEST(Autocorrelation, ShortOrFlatIsZero) {
  EXPECT_DOUBLE_EQ(autocorrelation(std::vector<double>{1.0, 2.0}, 1), 0.0);
  const std::vector<double> flat(20, 4.0);
  EXPECT_DOUBLE_EQ(autocorrelation(flat, 1), 0.0);
}

TEST(Autocorrelation, AlternatingSequenceNegativeLagOne) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_LT(autocorrelation(xs, 1), -0.9);
  EXPECT_GT(autocorrelation(xs, 2), 0.9);
}

TEST(Autocorrelation, WhiteNoiseNearZero) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.gaussian(0.0, 1.0));
  EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.06);
  EXPECT_NEAR(autocorrelation(xs, 5), 0.0, 0.06);
}

TEST(Autocorrelation, Ar1ProcessMatchesPhi) {
  Rng rng(7);
  std::vector<double> xs{0.0};
  const double phi = 0.7;
  for (int i = 1; i < 5000; ++i) {
    xs.push_back(phi * xs.back() + rng.gaussian(0.0, 1.0));
  }
  EXPECT_NEAR(autocorrelation(xs, 1), phi, 0.05);
  EXPECT_NEAR(autocorrelation(xs, 2), phi * phi, 0.06);
}

TEST(Autocorrelation, VectorVariant) {
  std::vector<double> xs;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(std::sin(2.0 * std::numbers::pi * i / 8.0));
  }
  const std::vector<double> acf = autocorrelations(xs, 4);
  ASSERT_EQ(acf.size(), 4u);
  EXPECT_DOUBLE_EQ(acf[0], autocorrelation(xs, 1));
  EXPECT_DOUBLE_EQ(acf[3], autocorrelation(xs, 4));
}

TEST(Correlation, PerfectPositiveAndNegative) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(xs, down), -1.0, 1e-12);
}

TEST(Correlation, DegenerateIsZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> flat{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(correlation(xs, flat), 0.0);
  EXPECT_DOUBLE_EQ(correlation(std::vector<double>{1.0},
                               std::vector<double>{2.0}),
                   0.0);
}

TEST(Correlation, SizeMismatchThrows) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_THROW(correlation(a, b), Error);
}

TEST(Correlation, IndependentNoiseNearZero) {
  Rng rng(11);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 3000; ++i) {
    xs.push_back(rng.gaussian(0.0, 1.0));
    ys.push_back(rng.gaussian(0.0, 1.0));
  }
  EXPECT_NEAR(correlation(xs, ys), 0.0, 0.05);
}

}  // namespace
}  // namespace rab::signal
