// Tests for the small dense linear algebra used by AR fitting.
#include <gtest/gtest.h>

#include <vector>

#include "stats/linalg.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab::stats {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, OutOfBoundsThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), Error);
  EXPECT_THROW(m(0, 2), Error);
}

TEST(Matrix, GramIsSymmetric) {
  Matrix a(3, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  a(2, 0) = 5.0;
  a(2, 1) = 6.0;
  const Matrix g = a.gram();
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_DOUBLE_EQ(g(0, 0), 35.0);   // 1+9+25
  EXPECT_DOUBLE_EQ(g(0, 1), 44.0);   // 2+12+30
  EXPECT_DOUBLE_EQ(g(1, 0), g(0, 1));
  EXPECT_DOUBLE_EQ(g(1, 1), 56.0);   // 4+16+36
}

TEST(Matrix, TransposeTimes) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  const std::vector<double> v{1.0, 1.0};
  const std::vector<double> out = a.transpose_times(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
}

TEST(Solve, Identity) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  const std::vector<double> x = solve(a, {3.0, -2.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
}

TEST(Solve, Known2x2) {
  // 2x + y = 5 ; x - y = 1  ->  x = 2, y = 1
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = -1.0;
  const std::vector<double> x = solve(a, {5.0, 1.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Solve, RequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const std::vector<double> x = solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(solve(a, {1.0, 2.0}), Error);
}

TEST(Solve, DimensionMismatchThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(solve(a, {1.0, 2.0}), Error);
  Matrix sq(2, 2);
  EXPECT_THROW(solve(sq, {1.0, 2.0, 3.0}), Error);
}

TEST(Solve, RandomSystemsRoundTrip) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 6);
    Matrix a(n, n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.uniform(-3.0, 3.0);
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-2.0, 2.0);
      a(i, i) += 4.0;  // diagonally dominant: never singular
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];
    }
    const std::vector<double> x = solve(a, b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-9);
    }
  }
}

TEST(LeastSquares, ExactlyDeterminedMatchesSolve) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = -1.0;
  const std::vector<double> x = least_squares(a, {5.0, 1.0});
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], 1.0, 1e-9);
}

TEST(LeastSquares, OverdeterminedLine) {
  // Fit y = 2t + 1 through noiseless points: recover slope/intercept.
  const std::vector<double> ts{0.0, 1.0, 2.0, 3.0, 4.0};
  Matrix a(ts.size(), 2);
  std::vector<double> b;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    a(i, 0) = ts[i];
    a(i, 1) = 1.0;
    b.push_back(2.0 * ts[i] + 1.0);
  }
  const std::vector<double> x = least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], 1.0, 1e-9);
}

TEST(LeastSquares, RidgeStabilizesCollinear) {
  // Two identical columns: unsolvable without ridge, finite with it.
  Matrix a(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = static_cast<double>(i + 1);
  }
  EXPECT_THROW(least_squares(a, {1.0, 2.0, 3.0}, 0.0), Error);
  const std::vector<double> x = least_squares(a, {1.0, 2.0, 3.0}, 1e-6);
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_NEAR(x[0], x[1], 1e-6);  // symmetric split
}

TEST(LeastSquares, NegativeRidgeThrows) {
  Matrix a(2, 2);
  EXPECT_THROW(least_squares(a, {1.0, 2.0}, -1.0), Error);
}

}  // namespace
}  // namespace rab::stats
