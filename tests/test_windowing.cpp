// Tests for sliding-window construction.
#include <gtest/gtest.h>

#include <vector>

#include "signal/windowing.hpp"
#include "util/error.hpp"

namespace rab::signal {
namespace {

std::vector<Sample> evenly_spaced(std::size_t n, double dt = 1.0) {
  std::vector<Sample> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Sample{static_cast<double>(i) * dt,
                         static_cast<double>(i)});
  }
  return out;
}

TEST(WindowSpec, ByCountAccessors) {
  const WindowSpec spec = WindowSpec::by_count(10);
  EXPECT_TRUE(spec.is_count());
  EXPECT_EQ(spec.count(), 10u);
  EXPECT_THROW((void)spec.duration(), Error);
}

TEST(WindowSpec, ByDurationAccessors) {
  const WindowSpec spec = WindowSpec::by_duration(30.0);
  EXPECT_FALSE(spec.is_count());
  EXPECT_DOUBLE_EQ(spec.duration(), 30.0);
  EXPECT_THROW((void)spec.count(), Error);
}

TEST(WindowSpec, RejectsDegenerate) {
  EXPECT_THROW(WindowSpec::by_count(1), Error);
  EXPECT_THROW(WindowSpec::by_duration(0.0), Error);
}

TEST(WindowAround, ByCountCentered) {
  const auto samples = evenly_spaced(100);
  const IndexRange r =
      window_around(samples, 50, WindowSpec::by_count(20));
  EXPECT_EQ(r.first, 40u);
  EXPECT_EQ(r.last, 60u);
  EXPECT_EQ(r.size(), 20u);
}

TEST(WindowAround, ByCountLeftEdgeKeepsFullWidth) {
  const auto samples = evenly_spaced(100);
  const IndexRange r = window_around(samples, 2, WindowSpec::by_count(20));
  EXPECT_EQ(r.first, 0u);
  EXPECT_EQ(r.last, 20u);
}

TEST(WindowAround, ByCountRightEdgeKeepsFullWidth) {
  const auto samples = evenly_spaced(100);
  const IndexRange r = window_around(samples, 98, WindowSpec::by_count(20));
  EXPECT_EQ(r.first, 80u);
  EXPECT_EQ(r.last, 100u);
}

TEST(WindowAround, ByCountShortSequenceClipped) {
  const auto samples = evenly_spaced(6);
  const IndexRange r = window_around(samples, 3, WindowSpec::by_count(20));
  EXPECT_EQ(r.first, 0u);
  EXPECT_EQ(r.last, 6u);
}

TEST(WindowAround, ByCountShortSequenceFullRangeForEveryCenter) {
  // n < count: the documented behavior is the whole sequence, regardless
  // of where the window is centered.
  const auto samples = evenly_spaced(5);
  for (std::size_t center = 0; center < samples.size(); ++center) {
    const IndexRange r =
        window_around(samples, center, WindowSpec::by_count(20));
    EXPECT_EQ(r.first, 0u);
    EXPECT_EQ(r.last, 5u);
  }
}

TEST(WindowAround, ByCountExactFitIsFullRange) {
  const auto samples = evenly_spaced(8);
  const IndexRange r = window_around(samples, 7, WindowSpec::by_count(8));
  EXPECT_EQ(r.first, 0u);
  EXPECT_EQ(r.last, 8u);
}

TEST(WindowAround, ByDurationSelectsTimeSpan) {
  const auto samples = evenly_spaced(100);  // 1 sample/day
  const IndexRange r =
      window_around(samples, 50, WindowSpec::by_duration(10.0));
  // center t=50, span [45, 55] inclusive.
  EXPECT_EQ(r.first, 45u);
  EXPECT_EQ(r.last, 56u);
}

TEST(WindowAround, ByDurationEdgesClip) {
  const auto samples = evenly_spaced(100);
  const IndexRange left =
      window_around(samples, 0, WindowSpec::by_duration(10.0));
  EXPECT_EQ(left.first, 0u);
  EXPECT_EQ(left.last, 6u);
  const IndexRange right =
      window_around(samples, 99, WindowSpec::by_duration(10.0));
  EXPECT_EQ(right.last, 100u);
}

TEST(WindowAround, CenterOutOfRangeThrows) {
  const auto samples = evenly_spaced(5);
  EXPECT_THROW(window_around(samples, 5, WindowSpec::by_count(2)), Error);
}

TEST(SplitAt, Halves) {
  const IndexRange range{10, 30};
  const auto [left, right] = split_at(range, 20);
  EXPECT_EQ(left.first, 10u);
  EXPECT_EQ(left.last, 20u);
  EXPECT_EQ(right.first, 20u);
  EXPECT_EQ(right.last, 30u);
}

TEST(SplitAt, DegenerateEdges) {
  const IndexRange range{10, 30};
  EXPECT_TRUE(split_at(range, 10).first.empty());
  EXPECT_TRUE(split_at(range, 30).second.empty());
  EXPECT_THROW(split_at(range, 31), Error);
  EXPECT_THROW(split_at(range, 9), Error);
}

TEST(ValuesIn, ExtractsRange) {
  const auto samples = evenly_spaced(10);
  const std::vector<double> values = values_in(samples, IndexRange{3, 6});
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 3.0);
  EXPECT_DOUBLE_EQ(values[2], 5.0);
}

TEST(ValuesIn, RangeBeyondEndThrows) {
  const auto samples = evenly_spaced(5);
  EXPECT_THROW(values_in(samples, IndexRange{0, 6}), Error);
}

TEST(DailyCounts, CountsPerDay) {
  std::vector<Sample> samples{
      {0.1, 1.0}, {0.9, 1.0}, {1.5, 1.0}, {3.0, 1.0}, {3.999, 1.0}};
  const std::vector<double> counts = daily_counts(samples, 0.0, 4.0);
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_DOUBLE_EQ(counts[0], 2.0);
  EXPECT_DOUBLE_EQ(counts[1], 1.0);
  EXPECT_DOUBLE_EQ(counts[2], 0.0);
  EXPECT_DOUBLE_EQ(counts[3], 2.0);
}

TEST(DailyCounts, IgnoresOutsideSpan) {
  std::vector<Sample> samples{{-1.0, 1.0}, {0.5, 1.0}, {10.0, 1.0}};
  const std::vector<double> counts = daily_counts(samples, 0.0, 2.0);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_DOUBLE_EQ(counts[0], 1.0);
  EXPECT_DOUBLE_EQ(counts[1], 0.0);
}

TEST(DailyCounts, FractionalSpanRoundsUp) {
  std::vector<Sample> samples{{0.5, 1.0}};
  EXPECT_EQ(daily_counts(samples, 0.0, 1.5).size(), 2u);
}

TEST(DailyCounts, EmptySpanYieldsNoDays) {
  // Regression: a single rating stamped on an integer day gives the ARC
  // detector floor(span) == ceil(span); the empty span must come back as
  // zero days, not fault or fabricate a day.
  std::vector<Sample> samples{{3.0, 4.5}};
  EXPECT_TRUE(daily_counts(samples, 3.0, 3.0).empty());
  EXPECT_TRUE(daily_counts({}, 0.0, 0.0).empty());
  EXPECT_THROW(daily_counts(samples, 3.0, 2.0), Error);
}

}  // namespace
}  // namespace rab::signal
