// Tests for the extension modules: submission io, trust forgetting, the
// median and entropy baselines.
#include <gtest/gtest.h>

#include <sstream>

#include "aggregation/entropy_scheme.hpp"
#include "aggregation/median_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "challenge/participants.hpp"
#include "challenge/submission_io.hpp"
#include "rating/fair_generator.hpp"
#include "trust/trust_manager.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab {
namespace {

// ------------------------------------------------------- submission io

challenge::Submission sample_submission() {
  challenge::Submission s;
  s.label = "sample-1";
  for (int i = 0; i < 5; ++i) {
    rating::Rating r;
    r.time = 100.0 + i;
    r.value = static_cast<double>(i % 6);
    r.rater = RaterId(1'000'000 + i);
    r.product = ProductId(1 + i % 2);
    r.unfair = true;
    s.ratings.push_back(r);
  }
  return s;
}

TEST(SubmissionIo, RoundTrip) {
  const challenge::Submission original = sample_submission();
  std::ostringstream out;
  challenge::write_submission(out, original);
  std::istringstream in(out.str());
  const challenge::Submission back = challenge::read_submission(in);
  EXPECT_EQ(back.label, original.label);
  ASSERT_EQ(back.ratings.size(), original.ratings.size());
  for (std::size_t i = 0; i < back.ratings.size(); ++i) {
    EXPECT_EQ(back.ratings[i], original.ratings[i]);
  }
}

TEST(SubmissionIo, AllRatingsReadBackUnfair) {
  std::ostringstream out;
  challenge::write_submission(out, sample_submission());
  std::istringstream in(out.str());
  for (const rating::Rating& r :
       challenge::read_submission(in).ratings) {
    EXPECT_TRUE(r.unfair);
  }
}

TEST(SubmissionIo, PopulationRoundTrip) {
  std::vector<challenge::Submission> population;
  population.push_back(sample_submission());
  population.push_back(sample_submission());
  population[1].label = "sample-2";
  population[1].ratings.resize(2);

  std::ostringstream out;
  challenge::write_population(out, population);
  std::istringstream in(out.str());
  const auto back = challenge::read_population(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].label, "sample-1");
  EXPECT_EQ(back[1].label, "sample-2");
  EXPECT_EQ(back[1].ratings.size(), 2u);
}

TEST(SubmissionIo, RatingsBeforeHeaderThrow) {
  std::istringstream in("1,2,3.0,4.0\n");
  EXPECT_THROW(challenge::read_population(in), Error);
}

TEST(SubmissionIo, MalformedRowThrows) {
  std::istringstream in("#label x\n1,2,3.0\n");
  EXPECT_THROW(challenge::read_population(in), Error);
}

TEST(SubmissionIo, ReadSubmissionRejectsMultiple) {
  std::istringstream in("#label a\n1,2,3.0,4.0\n#label b\n1,2,3.0,4.0\n");
  EXPECT_THROW(challenge::read_submission(in), Error);
}

TEST(SubmissionIo, MissingFileThrows) {
  EXPECT_THROW(challenge::read_submission_file("/nonexistent/s.csv"), Error);
}

TEST(SubmissionIo, GeneratedPopulationSurvivesRoundTrip) {
  const challenge::Challenge c = challenge::Challenge::make_default(7);
  const challenge::ParticipantPopulation population(c, 3);
  const auto subs = population.generate(5);
  std::ostringstream out;
  challenge::write_population(out, subs);
  std::istringstream in(out.str());
  const auto back = challenge::read_population(in);
  ASSERT_EQ(back.size(), subs.size());
  for (std::size_t i = 0; i < subs.size(); ++i) {
    EXPECT_EQ(back[i].ratings.size(), subs[i].ratings.size());
    EXPECT_EQ(c.validate(back[i]), challenge::Violation::kNone);
  }
}

// ------------------------------------------------------- trust forgetting

TEST(TrustForgetting, RejectsBadFactor) {
  EXPECT_THROW(trust::TrustManager{0.0}, Error);
  EXPECT_THROW(trust::TrustManager{1.5}, Error);
}

TEST(TrustForgetting, DecayIsNoOpAtOne) {
  trust::TrustManager manager(1.0);
  manager.record(RaterId(1), {.ratings = 10, .suspicious = 0});
  const double before = manager.trust(RaterId(1));
  manager.decay();
  EXPECT_DOUBLE_EQ(manager.trust(RaterId(1)), before);
}

TEST(TrustForgetting, DecayPullsTowardPrior) {
  trust::TrustManager manager(0.5);
  manager.record(RaterId(1), {.ratings = 20, .suspicious = 20});
  const double punished = manager.trust(RaterId(1));
  EXPECT_LT(punished, 0.1);
  for (int i = 0; i < 10; ++i) manager.decay();
  // Old sins fade: trust returns toward the 0.5 prior.
  EXPECT_GT(manager.trust(RaterId(1)), 0.4);
}

TEST(TrustForgetting, ReformedRaterRecoversFasterWithForgetting) {
  trust::TrustManager forgetful(0.8);
  trust::TrustManager elephant(1.0);
  for (auto* manager : {&forgetful, &elephant}) {
    manager->record(RaterId(1), {.ratings = 20, .suspicious = 20});
  }
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (auto* manager : {&forgetful, &elephant}) {
      manager->decay();
      manager->record(RaterId(1), {.ratings = 5, .suspicious = 0});
    }
  }
  EXPECT_GT(forgetful.trust(RaterId(1)), elephant.trust(RaterId(1)));
}

// ------------------------------------------------------- median scheme

rating::Dataset small_fair(std::uint64_t seed = 5) {
  rating::FairDataConfig config;
  config.product_count = 1;
  config.history_days = 90.0;
  config.seed = seed;
  return rating::FairDataGenerator(config).generate();
}

TEST(MedianScheme, MatchesManualMedian) {
  rating::Dataset data;
  for (int i = 0; i < 5; ++i) {
    rating::Rating r;
    r.time = static_cast<double>(i);
    r.value = static_cast<double>(i);  // 0,1,2,3,4 -> median 2
    r.rater = RaterId(i);
    r.product = ProductId(1);
    data.add(r);
  }
  const auto series = aggregation::MedianScheme().aggregate(data, 30.0);
  ASSERT_EQ(series.of(ProductId(1)).size(), 1u);
  EXPECT_DOUBLE_EQ(series.of(ProductId(1))[0].value, 2.0);
}

TEST(MedianScheme, ImmuneToMinorityOutliers) {
  const rating::Dataset fair = small_fair();
  // 20 zeros against ~90 fair ratings per bin: the median barely moves.
  Rng rng(9);
  std::vector<rating::Rating> attack;
  for (int i = 0; i < 20; ++i) {
    rating::Rating r;
    r.time = rng.uniform(30.0, 60.0);
    r.value = 0.0;
    r.rater = RaterId(900'000 + i);
    r.product = ProductId(1);
    r.unfair = true;
    attack.push_back(r);
  }
  const aggregation::MedianScheme median;
  const auto clean = median.aggregate(fair, 30.0);
  const auto dirty = median.aggregate(fair.with_added(attack), 30.0);
  for (std::size_t i = 0; i < clean.of(ProductId(1)).size(); ++i) {
    EXPECT_NEAR(clean.of(ProductId(1))[i].value,
                dirty.of(ProductId(1))[i].value, 1.0);
  }
}

// ------------------------------------------------------- entropy scheme

TEST(EntropyScheme, RejectsBadConfig) {
  aggregation::EntropyConfig config;
  config.entropy_threshold = 0.0;
  EXPECT_THROW(aggregation::EntropyScheme{config}, Error);
  config = {};
  config.max_removal_fraction = 1.0;
  EXPECT_THROW(aggregation::EntropyScheme{config}, Error);
}

TEST(EntropyScheme, StarEntropyKnownValues) {
  EXPECT_DOUBLE_EQ(aggregation::EntropyScheme::star_entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(
      aggregation::EntropyScheme::star_entropy({4.0, 4.0, 4.0}), 0.0);
  // Two equally likely levels: exactly 1 bit.
  EXPECT_NEAR(
      aggregation::EntropyScheme::star_entropy({1.0, 1.0, 4.0, 4.0}), 1.0,
      1e-12);
}

TEST(EntropyScheme, SecondModeRaisesEntropy) {
  std::vector<double> clean{3, 4, 4, 5, 4, 5, 3, 4};
  std::vector<double> dirty = clean;
  for (int i = 0; i < 6; ++i) dirty.push_back(0.0);
  EXPECT_GT(aggregation::EntropyScheme::star_entropy(dirty),
            aggregation::EntropyScheme::star_entropy(clean));
}

TEST(EntropyScheme, RemovesInjectedMode) {
  const rating::Dataset fair = small_fair(11);
  Rng rng(13);
  std::vector<rating::Rating> attack;
  for (int i = 0; i < 40; ++i) {
    rating::Rating r;
    r.time = rng.uniform(30.0, 60.0);
    r.value = 0.0;
    r.rater = RaterId(900'000 + i);
    r.product = ProductId(1);
    r.unfair = true;
    attack.push_back(r);
  }
  const aggregation::EntropyScheme entropy;
  const aggregation::SaScheme sa;
  const rating::Dataset dirty = fair.with_added(attack);

  auto shift = [&](const aggregation::AggregationScheme& scheme) {
    const auto clean_series = scheme.aggregate(fair, 30.0);
    const auto dirty_series = scheme.aggregate(dirty, 30.0);
    double worst = 0.0;
    const auto& a = clean_series.of(ProductId(1));
    const auto& b = dirty_series.of(ProductId(1));
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].used == 0 || b[i].used == 0) continue;
      worst = std::max(worst, std::fabs(a[i].value - b[i].value));
    }
    return worst;
  };
  EXPECT_LT(shift(entropy), 0.5 * shift(sa));
}

TEST(EntropyScheme, CleanDataUntouched) {
  const rating::Dataset fair = small_fair(17);
  const auto series = aggregation::EntropyScheme().aggregate(fair, 30.0);
  for (const auto& point : series.of(ProductId(1))) {
    EXPECT_EQ(point.removed, 0u)
        << "clean bin should not trip the entropy threshold";
  }
}

TEST(EntropyScheme, RemovalBudgetRespected) {
  // Even a majority flood cannot push removals past the configured cap.
  rating::Dataset data;
  for (int i = 0; i < 30; ++i) {
    rating::Rating r;
    r.time = static_cast<double>(i) / 2.0;
    r.value = i < 15 ? 0.0 : 5.0;  // maximal two-mode entropy
    r.rater = RaterId(i);
    r.product = ProductId(1);
    data.add(r);
  }
  aggregation::EntropyConfig config;
  config.max_removal_fraction = 0.2;
  const auto series =
      aggregation::EntropyScheme(config).aggregate(data, 30.0);
  EXPECT_LE(series.of(ProductId(1))[0].removed, 6u);
}

}  // namespace
}  // namespace rab
