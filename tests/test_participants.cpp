// Tests for the synthetic participant population.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "challenge/analysis.hpp"
#include "challenge/participants.hpp"

namespace rab::challenge {
namespace {

const Challenge& shared_challenge() {
  static const Challenge c = Challenge::make_default(101);
  return c;
}

TEST(Strategies, AllStrategiesListed) {
  const auto all = all_strategies();
  EXPECT_EQ(all.size(), 8u);
  std::set<StrategyKind> distinct(all.begin(), all.end());
  EXPECT_EQ(distinct.size(), all.size());
}

TEST(Strategies, NamesAreDistinct) {
  std::set<std::string> names;
  for (StrategyKind kind : all_strategies()) {
    names.insert(to_string(kind));
  }
  EXPECT_EQ(names.size(), all_strategies().size());
}

TEST(Population, EveryStrategyProducesValidSubmission) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 7);
  for (StrategyKind kind : all_strategies()) {
    for (std::uint64_t stream = 0; stream < 3; ++stream) {
      const Submission s = population.make(kind, stream);
      EXPECT_EQ(c.validate(s), Violation::kNone)
          << to_string(kind) << " stream " << stream << ": "
          << to_string(c.validate(s));
      EXPECT_FALSE(s.empty());
    }
  }
}

TEST(Population, SubmissionsAreGroundTruthUnfair) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 7);
  const Submission s = population.make(StrategyKind::kHighVariance, 0);
  for (const rating::Rating& r : s.ratings) {
    EXPECT_TRUE(r.unfair);
  }
}

TEST(Population, Reproducible) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation a(c, 7);
  const ParticipantPopulation b(c, 7);
  const Submission sa = a.make(StrategyKind::kModerateBias, 5);
  const Submission sb = b.make(StrategyKind::kModerateBias, 5);
  ASSERT_EQ(sa.ratings.size(), sb.ratings.size());
  for (std::size_t i = 0; i < sa.ratings.size(); ++i) {
    EXPECT_EQ(sa.ratings[i], sb.ratings[i]);
  }
}

TEST(Population, StreamsIndividualize) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 7);
  const Submission a = population.make(StrategyKind::kNaiveExtreme, 0);
  const Submission b = population.make(StrategyKind::kNaiveExtreme, 1);
  bool different = a.ratings.size() != b.ratings.size();
  for (std::size_t i = 0; !different && i < a.ratings.size(); ++i) {
    different = !(a.ratings[i] == b.ratings[i]);
  }
  EXPECT_TRUE(different);
}

TEST(Population, NaiveExtremeHasExtremeValuesAndZeroSpread) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 7);
  const Submission s = population.make(StrategyKind::kNaiveExtreme, 2);
  const ValueStats down = value_stats(s, ProductId(1), c.fair_mean(ProductId(1)));
  EXPECT_LT(down.bias, -3.0);
  EXPECT_NEAR(down.stddev, 0.0, 1e-9);
  for (const rating::Rating& r : s.for_product(ProductId(1))) {
    EXPECT_DOUBLE_EQ(r.value, rating::kMinRating);
  }
  for (const rating::Rating& r : s.for_product(ProductId(2))) {
    EXPECT_DOUBLE_EQ(r.value, rating::kMaxRating);
  }
}

TEST(Population, HighVarianceHasLargeSpread) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 7);
  double max_spread = 0.0;
  for (std::uint64_t stream = 0; stream < 5; ++stream) {
    const Submission s = population.make(StrategyKind::kHighVariance, stream);
    const ValueStats down =
        value_stats(s, ProductId(1), c.fair_mean(ProductId(1)));
    max_spread = std::max(max_spread, down.stddev);
    EXPECT_LT(down.bias, -0.5);
  }
  EXPECT_GT(max_spread, 0.7);
}

TEST(Population, BurstsAttackHasMultipleClusters) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 7);
  const Submission s = population.make(StrategyKind::kBursts, 1);
  // The attack duration should cover multiple disjoint bursts: the largest
  // inter-rating gap within the product exceeds a burst length.
  const auto rs = s.for_product(ProductId(1));
  ASSERT_GE(rs.size(), 10u);
  double max_gap = 0.0;
  for (std::size_t i = 1; i < rs.size(); ++i) {
    max_gap = std::max(max_gap, rs[i].time - rs[i - 1].time);
  }
  EXPECT_GT(max_gap, 5.0);
}

TEST(Population, GenerateMatchesRequestedCount) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 7);
  const auto subs = population.generate(40);
  EXPECT_EQ(subs.size(), 40u);
  for (const Submission& s : subs) {
    EXPECT_EQ(c.validate(s), Violation::kNone) << s.label;
  }
}

TEST(Population, MixIsMajorityStraightforward) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 7);
  const auto subs = population.generate(251);
  std::map<std::string, int> by_prefix;
  for (const Submission& s : subs) {
    const auto dash = s.label.rfind('-');
    ++by_prefix[s.label.substr(0, dash)];
  }
  const int naive =
      by_prefix["naive-extreme"] + by_prefix["naive-spread"];
  // The paper: "more than half of the submitted attacks were
  // straightforward".
  EXPECT_GT(naive, 251 / 3);
  EXPECT_GE(by_prefix.size(), 6u);  // broad coverage of strategies
}

TEST(Population, CamouflageMixesHonestLookingRatings) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 7);
  const Submission s = population.make(StrategyKind::kCamouflage, 3);
  const double fair_mean = c.fair_mean(ProductId(1));
  int near_fair = 0;
  const auto rs = s.for_product(ProductId(1));
  for (const rating::Rating& r : rs) {
    if (std::fabs(r.value - fair_mean) <= 1.0) ++near_fair;
  }
  EXPECT_GT(near_fair, 0);
  EXPECT_LT(near_fair, static_cast<int>(rs.size()));
}

TEST(Population, ManualJitterTimesSnapToEvenings) {
  const Challenge& c = shared_challenge();
  const ParticipantPopulation population(c, 7);
  const Submission s = population.make(StrategyKind::kManualJitter, 4);
  int evening = 0;
  int total = 0;
  for (const rating::Rating& r : s.ratings) {
    const double frac = r.time - std::floor(r.time);
    ++total;
    if (frac >= 0.7 && frac <= 0.97) ++evening;
  }
  EXPECT_GT(evening, total * 3 / 4);
}

}  // namespace
}  // namespace rab::challenge
