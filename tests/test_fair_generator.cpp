// Tests for the synthetic fair-data generator.
#include <gtest/gtest.h>

#include "rating/fair_generator.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::rating {
namespace {

TEST(FairGenerator, RejectsBadConfig) {
  FairDataConfig config;
  config.product_count = 0;
  EXPECT_THROW(FairDataGenerator{config}, Error);

  config = FairDataConfig{};
  config.mean_value = 6.0;
  EXPECT_THROW(FairDataGenerator{config}, Error);

  config = FairDataConfig{};
  config.arrival_rate_jitter = config.base_arrival_rate + 1.0;
  EXPECT_THROW(FairDataGenerator{config}, Error);
}

TEST(FairGenerator, ProducesConfiguredProductCount) {
  FairDataConfig config;
  config.product_count = 9;
  const rating::Dataset data = FairDataGenerator(config).generate();
  EXPECT_EQ(data.product_count(), 9u);
  for (ProductId id : data.product_ids()) {
    EXPECT_GE(id.value(), 1);
    EXPECT_LE(id.value(), 9);
  }
}

TEST(FairGenerator, Reproducible) {
  FairDataConfig config;
  config.product_count = 2;
  config.history_days = 60.0;
  const rating::Dataset a = FairDataGenerator(config).generate();
  const rating::Dataset b = FairDataGenerator(config).generate();
  ASSERT_EQ(a.total_ratings(), b.total_ratings());
  const auto pa = a.product(ProductId(1)).rows();
  const auto pb = b.product(ProductId(1)).rows();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i], pb[i]);
  }
}

TEST(FairGenerator, DifferentSeedsDiffer) {
  FairDataConfig config;
  config.product_count = 1;
  config.history_days = 60.0;
  const auto a = FairDataGenerator(config).generate();
  config.seed += 1;
  const auto b = FairDataGenerator(config).generate();
  EXPECT_NE(a.product(ProductId(1)).size(), 0u);
  // Arrival processes differ with overwhelming probability.
  bool different = a.product(ProductId(1)).size() != b.product(ProductId(1)).size();
  if (!different) {
    const auto ra = a.product(ProductId(1)).rows();
    const auto rb = b.product(ProductId(1)).rows();
    for (std::size_t i = 0; i < ra.size(); ++i) {
      if (!(ra[i] == rb[i])) {
        different = true;
        break;
      }
    }
  }
  EXPECT_TRUE(different);
}

TEST(FairGenerator, ValuesOnScaleAndDiscrete) {
  FairDataConfig config;
  config.product_count = 3;
  const auto data = FairDataGenerator(config).generate();
  for (ProductId id : data.product_ids()) {
    for (const Rating& r : data.product(id).rows()) {
      EXPECT_GE(r.value, kMinRating);
      EXPECT_LE(r.value, kMaxRating);
      EXPECT_DOUBLE_EQ(r.value, std::round(r.value));
      EXPECT_FALSE(r.unfair);
    }
  }
}

TEST(FairGenerator, MeanNearConfigured) {
  FairDataConfig config;
  config.product_count = 9;
  const auto data = FairDataGenerator(config).generate();
  for (ProductId id : data.product_ids()) {
    const double mean = stats::mean(data.product(id).values());
    EXPECT_NEAR(mean, 4.0, 0.5) << "product " << id;
  }
}

TEST(FairGenerator, ArrivalRateNearConfigured) {
  FairDataConfig config;
  config.product_count = 9;
  config.history_days = 180.0;
  const auto data = FairDataGenerator(config).generate();
  for (ProductId id : data.product_ids()) {
    const double rate = static_cast<double>(data.product(id).size()) /
                        config.history_days;
    EXPECT_GT(rate, config.base_arrival_rate - 1.2) << "product " << id;
    EXPECT_LT(rate, config.base_arrival_rate + 1.2) << "product " << id;
  }
}

TEST(FairGenerator, TimesWithinHistory) {
  FairDataConfig config;
  config.history_days = 90.0;
  config.product_count = 2;
  const auto data = FairDataGenerator(config).generate();
  for (ProductId id : data.product_ids()) {
    for (const Rating& r : data.product(id).rows()) {
      EXPECT_GE(r.time, 0.0);
      EXPECT_LT(r.time, 90.0);
    }
  }
}

TEST(FairGenerator, RaterPoolRespected) {
  FairDataConfig config;
  config.product_count = 2;
  config.honest_rater_pool = 10;
  const auto data = FairDataGenerator(config).generate();
  for (RaterId rater : data.rater_ids()) {
    EXPECT_GE(rater.value(), 0);
    EXPECT_LT(rater.value(), 10);
  }
}

TEST(FairGenerator, ContinuousValuesWhenConfigured) {
  FairDataConfig config;
  config.product_count = 1;
  config.discrete_values = false;
  const auto data = FairDataGenerator(config).generate();
  bool saw_fractional = false;
  for (const Rating& r : data.product(ProductId(1)).rows()) {
    if (r.value != std::round(r.value)) saw_fractional = true;
  }
  EXPECT_TRUE(saw_fractional);
}

TEST(FairGenerator, ProductsHaveDistinctStreams) {
  FairDataConfig config;
  config.product_count = 2;
  const auto data = FairDataGenerator(config).generate();
  // Different products fork different RNG streams; their arrival counts
  // should differ (equality has negligible probability over 180 days).
  EXPECT_NE(data.product(ProductId(1)).size(),
            data.product(ProductId(2)).size());
}

TEST(FairGenerator, GenerateProductRejectsNonPositiveId) {
  FairDataGenerator gen;
  EXPECT_THROW(gen.generate_product(ProductId(0)), Error);
}


TEST(FairGenerator, PersonasDeterministic) {
  FairDataConfig config;
  config.harsh_rater_fraction = 0.2;
  config.random_rater_fraction = 0.1;
  const FairDataGenerator a(config);
  const FairDataGenerator b(config);
  for (std::int64_t rater = 0; rater < 50; ++rater) {
    EXPECT_EQ(a.persona_of(RaterId(rater)), b.persona_of(RaterId(rater)));
  }
}

TEST(FairGenerator, PersonaFractionsRoughlyRespected) {
  FairDataConfig config;
  config.harsh_rater_fraction = 0.2;
  config.random_rater_fraction = 0.1;
  const FairDataGenerator gen(config);
  int harsh = 0;
  int random = 0;
  const int n = 2000;
  for (std::int64_t rater = 0; rater < n; ++rater) {
    switch (gen.persona_of(RaterId(rater))) {
      case FairDataGenerator::Persona::kHarsh:
        ++harsh;
        break;
      case FairDataGenerator::Persona::kRandom:
        ++random;
        break;
      default:
        break;
    }
  }
  EXPECT_NEAR(static_cast<double>(harsh) / n, 0.2, 0.04);
  EXPECT_NEAR(static_cast<double>(random) / n, 0.1, 0.03);
}

TEST(FairGenerator, ZeroFractionsMeansAllNormal) {
  const FairDataGenerator gen;  // defaults: no personas
  for (std::int64_t rater = 0; rater < 200; ++rater) {
    EXPECT_EQ(gen.persona_of(RaterId(rater)),
              FairDataGenerator::Persona::kNormal);
  }
}

TEST(FairGenerator, HarshPersonasLowerTheMean) {
  FairDataConfig plain;
  plain.product_count = 1;
  FairDataConfig grumpy = plain;
  grumpy.harsh_rater_fraction = 0.3;
  const double plain_mean = stats::mean(
      FairDataGenerator(plain).generate_product(ProductId(1)).values());
  const double grumpy_mean = stats::mean(
      FairDataGenerator(grumpy).generate_product(ProductId(1)).values());
  EXPECT_LT(grumpy_mean, plain_mean - 0.15);
}

TEST(FairGenerator, InvalidFractionsRejected) {
  FairDataConfig config;
  config.harsh_rater_fraction = 0.8;
  config.random_rater_fraction = 0.3;  // sums past 1
  EXPECT_THROW(FairDataGenerator{config}, Error);
  config = FairDataConfig{};
  config.harsh_rater_fraction = -0.1;
  EXPECT_THROW(FairDataGenerator{config}, Error);
}

TEST(FairGenerator, IndividualUnfairRatersStillGroundTruthFair) {
  // Paper Section III: personality/habit/random ratings are *individual*
  // unfair ratings — part of the organic stream, not attack ground truth.
  FairDataConfig config;
  config.product_count = 1;
  config.harsh_rater_fraction = 0.2;
  config.random_rater_fraction = 0.1;
  const ProductRatings stream =
      FairDataGenerator(config).generate_product(ProductId(1));
  for (const Rating& r : stream.rows()) {
    EXPECT_FALSE(r.unfair);
  }
}

}  // namespace
}  // namespace rab::rating
