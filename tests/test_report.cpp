// Tests for the markdown analysis report.
#include <gtest/gtest.h>

#include "challenge/participants.hpp"
#include "challenge/report.hpp"
#include "rating/fair_generator.hpp"
#include "util/error.hpp"

namespace rab::challenge {
namespace {

TEST(Report, EmptyDataset) {
  rating::Dataset empty;
  const std::string report = markdown_report(empty);
  EXPECT_NE(report.find("Empty dataset"), std::string::npos);
}

TEST(Report, RejectsBadBin) {
  rating::Dataset empty;
  ReportOptions options;
  options.bin_days = 0.0;
  EXPECT_THROW(markdown_report(empty, options), Error);
}

TEST(Report, FairDataSaysNone) {
  rating::FairDataConfig config;
  config.product_count = 2;
  config.history_days = 90.0;
  const auto data = rating::FairDataGenerator(config).generate();
  const std::string report = markdown_report(data);
  EXPECT_NE(report.find("# Rating dataset analysis"), std::string::npos);
  EXPECT_NE(report.find("## Aggregates"), std::string::npos);
  // Clean data: no collusion groups; (almost) no distrusted raters.
  EXPECT_NE(report.find("_None found._"), std::string::npos);
}

TEST(Report, AttackedDataSurfacesFindings) {
  const Challenge c = Challenge::make_default(55);
  const ParticipantPopulation population(c, 7);
  const auto data =
      c.apply(population.make(StrategyKind::kNaiveSpread, 0));
  const std::string report = markdown_report(data);
  // The squad should appear both as distrusted raters and as a group.
  EXPECT_EQ(report.find("_None found._"), std::string::npos);
  EXPECT_NE(report.find("## Collusion-group candidates"),
            std::string::npos);
  EXPECT_NE(report.find("1000000"), std::string::npos);
}

TEST(Report, ListsEveryProduct) {
  rating::FairDataConfig config;
  config.product_count = 3;
  config.history_days = 70.0;
  const auto data = rating::FairDataGenerator(config).generate();
  const std::string report = markdown_report(data);
  for (const char* row : {"| 1 |", "| 2 |", "| 3 |"}) {
    EXPECT_NE(report.find(row), std::string::npos) << row;
  }
}

TEST(Report, RespectsListCap) {
  const Challenge c = Challenge::make_default(56);
  const ParticipantPopulation population(c, 9);
  const auto data =
      c.apply(population.make(StrategyKind::kNaiveExtreme, 1));
  ReportOptions options;
  options.max_listed_raters = 3;
  const std::string report = markdown_report(data, options);
  EXPECT_NE(report.find("more not listed"), std::string::npos);
}

}  // namespace
}  // namespace rab::challenge
