// Tests for OnlineMonitor checkpoint/restore (detectors/checkpoint).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "detectors/checkpoint.hpp"
#include "detectors/online_monitor.hpp"
#include "rating/fair_generator.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace rab::detectors {
namespace {

namespace fs = std::filesystem;

rating::Dataset fair_data(std::uint64_t seed = 3) {
  rating::FairDataConfig config;
  config.product_count = 2;
  config.history_days = 150.0;
  config.seed = seed;
  return rating::FairDataGenerator(config).generate();
}

std::vector<rating::Rating> merged_time_ordered(const rating::Dataset& data) {
  std::vector<rating::Rating> all;
  for (ProductId id : data.product_ids()) {
    const auto rs = data.product(id).rows();
    all.insert(all.end(), rs.begin(), rs.end());
  }
  std::sort(all.begin(), all.end(), rating::ByTime{});
  return all;
}

std::vector<rating::Rating> burst_attack(ProductId product, double begin,
                                         double end, std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<rating::Rating> out;
  for (std::size_t i = 0; i < count; ++i) {
    rating::Rating r;
    r.time = rng.uniform(begin, end);
    r.value = 0.0;
    r.rater = RaterId(1'000'000 + static_cast<std::int64_t>(i));
    r.product = product;
    r.unfair = true;
    out.push_back(r);
  }
  return out;
}

/// Attacked feed: enough structure that alarms, trust evidence, and (with
/// retention) compaction are all non-trivial in the snapshot.
std::vector<rating::Rating> make_feed() {
  return merged_time_ordered(
      fair_data(7).with_added(burst_attack(ProductId(1), 60.0, 72.0, 50, 9)));
}

OnlineConfig base_config() {
  OnlineConfig config;
  config.epoch_days = 10.0;
  config.trust_forgetting = 0.95;
  config.retention_days = 40.0;
  return config;
}

/// Everything a recovered run must reproduce bit-identically.
struct Observable {
  std::vector<Alarm> alarms;
  std::vector<OnlineEpochStats> epochs;
  std::vector<trust::RaterCounts> trust;
  std::size_t ingested = 0;
  std::size_t resident = 0;
  std::size_t compacted = 0;

  friend bool operator==(const Observable&, const Observable&) = default;
};

Observable observe(const OnlineMonitor& m) {
  return Observable{m.alarms(),           m.epoch_stats(),
                    m.trust().export_counts(), m.ingested(),
                    m.resident_ratings(), m.compacted_ratings()};
}

/// Unique scratch directory under the working directory (the build tree
/// when run via ctest), removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_("rab-ckpt-scratch-" + name) {
    fs::remove_all(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Checkpoint, GenerationFilenameRoundTrips) {
  using checkpoint::generation_filename;
  using checkpoint::parse_generation;
  EXPECT_EQ(generation_filename(0), "ckpt-00000000.rabck");
  EXPECT_EQ(generation_filename(12), "ckpt-00000012.rabck");
  for (std::size_t gen : {0u, 1u, 12u, 99999999u, 100000000u}) {
    EXPECT_EQ(parse_generation(generation_filename(gen)), gen);
  }
  EXPECT_FALSE(parse_generation("ckpt-12.tmp").has_value());
  EXPECT_FALSE(parse_generation("ckpt-.rabck").has_value());
  EXPECT_FALSE(parse_generation("ckpt-12x34.rabck").has_value());
  EXPECT_FALSE(parse_generation("snapshot.rabck").has_value());
}

TEST(Checkpoint, SaveRestoreRoundTripsAllState) {
  ScratchDir dir("roundtrip");
  const std::vector<rating::Rating> feed = make_feed();
  const std::size_t half = feed.size() / 2;

  OnlineMonitor original(base_config());
  for (std::size_t i = 0; i < half; ++i) original.ingest(feed[i]);
  const std::string path = dir.path() + "/snap.rabck";
  fs::create_directories(dir.path());
  original.save_checkpoint(path);

  OnlineMonitor restored(base_config());
  restored.restore_checkpoint(path);
  EXPECT_EQ(observe(restored), observe(original));

  // The restored monitor must continue exactly like the original.
  for (std::size_t i = half; i < feed.size(); ++i) {
    original.ingest(feed[i]);
    restored.ingest(feed[i]);
  }
  original.flush();
  restored.flush();
  EXPECT_EQ(observe(restored), observe(original));
}

TEST(Checkpoint, RestoredRunMatchesUninterruptedRun) {
  ScratchDir dir("replay");
  const std::vector<rating::Rating> feed = make_feed();

  OnlineMonitor reference(base_config());
  for (const auto& r : feed) reference.ingest(r);
  reference.flush();

  OnlineConfig with_ckpt = base_config();
  with_ckpt.checkpoint_dir = dir.path();
  OnlineMonitor writer(with_ckpt);
  const std::size_t crash_at = (feed.size() * 2) / 3;
  for (std::size_t i = 0; i < crash_at; ++i) writer.ingest(feed[i]);
  // "Crash": writer is abandoned; recover into a fresh monitor and replay
  // the durable feed from the restored high-water mark.
  OnlineMonitor recovered(with_ckpt);
  const auto gen = recovered.restore_latest(dir.path());
  ASSERT_TRUE(gen.has_value());
  for (std::size_t i = recovered.ingested(); i < feed.size(); ++i) {
    recovered.ingest(feed[i]);
  }
  recovered.flush();
  EXPECT_EQ(observe(recovered), observe(reference));
}

TEST(Checkpoint, RestoreRejectsConfigMismatch) {
  ScratchDir dir("mismatch");
  fs::create_directories(dir.path());
  const std::string path = dir.path() + "/snap.rabck";
  OnlineMonitor original(base_config());
  for (const auto& r : make_feed()) original.ingest(r);
  original.save_checkpoint(path);

  {
    OnlineConfig other = base_config();
    other.epoch_days = 20.0;
    OnlineMonitor m(other);
    EXPECT_THROW(m.restore_checkpoint(path), InvalidArgument);
  }
  {
    OnlineConfig other = base_config();
    other.toggles.use_me = !other.toggles.use_me;
    OnlineMonitor m(other);
    EXPECT_THROW(m.restore_checkpoint(path), InvalidArgument);
  }
  {
    OnlineConfig other = base_config();
    other.detectors.mc.glrt_threshold += 1.0;
    OnlineMonitor m(other);
    EXPECT_THROW(m.restore_checkpoint(path), InvalidArgument);
  }
  {
    // Cache and checkpoint knobs are operational, not semantic: changing
    // them must NOT invalidate a snapshot.
    OnlineConfig other = base_config();
    other.cache_streams = 0;
    other.checkpoint_keep = 7;
    other.checkpoint_every_epochs = 5;
    OnlineMonitor m(other);
    EXPECT_NO_THROW(m.restore_checkpoint(path));
  }
}

TEST(Checkpoint, PeriodicCheckpointsPruneToKeepCount) {
  ScratchDir dir("prune");
  OnlineConfig config = base_config();
  config.checkpoint_dir = dir.path();
  config.checkpoint_keep = 3;
  OnlineMonitor monitor(config);
  for (const auto& r : make_feed()) monitor.ingest(r);
  monitor.flush();

  ASSERT_GT(monitor.epoch_stats().size(), 3u);
  const std::vector<std::size_t> gens =
      checkpoint::list_generations(dir.path());
  EXPECT_EQ(gens.size(), 3u);
  // The newest surviving generation is the flush's checkpoint.
  EXPECT_EQ(gens.back(), monitor.epoch_stats().size());
  for (std::size_t gen : gens) {
    EXPECT_NO_THROW(checkpoint::verify_snapshot(
        dir.path() + "/" + checkpoint::generation_filename(gen)));
  }
}

TEST(Checkpoint, CheckpointEveryNSkipsIntermediateEpochs) {
  ScratchDir dir("every-n");
  OnlineConfig config = base_config();
  config.checkpoint_dir = dir.path();
  config.checkpoint_every_epochs = 4;
  config.checkpoint_keep = 100;
  OnlineMonitor monitor(config);
  for (const auto& r : make_feed()) monitor.ingest(r);

  for (std::size_t gen : checkpoint::list_generations(dir.path())) {
    EXPECT_EQ(gen % 4, 0u) << "unexpected generation " << gen;
  }
}

TEST(Checkpoint, RestoreLatestOnMissingOrEmptyDirIsNullopt) {
  ScratchDir dir("empty");
  OnlineMonitor monitor(base_config());
  EXPECT_EQ(monitor.restore_latest(dir.path() + "/nonexistent"),
            std::nullopt);
  fs::create_directories(dir.path());
  EXPECT_EQ(monitor.restore_latest(dir.path()), std::nullopt);
}

TEST(Checkpoint, TruncatedSnapshotDetectedAndSkipped) {
  ScratchDir dir("truncate");
  OnlineConfig config = base_config();
  config.checkpoint_dir = dir.path();
  OnlineMonitor monitor(config);
  const std::vector<rating::Rating> feed = make_feed();
  for (const auto& r : feed) monitor.ingest(r);
  monitor.flush();

  std::vector<std::size_t> gens = checkpoint::list_generations(dir.path());
  ASSERT_GE(gens.size(), 2u);
  const std::string newest =
      dir.path() + "/" + checkpoint::generation_filename(gens.back());

  // Tear the newest snapshot in half, as a crashed kernel might.
  const auto size = fs::file_size(newest);
  fs::resize_file(newest, size / 2);
  EXPECT_THROW(checkpoint::verify_snapshot(newest), CorruptData);

  OnlineMonitor recovered(config);
  const auto gen = recovered.restore_latest(dir.path());
  ASSERT_TRUE(gen.has_value());
  EXPECT_EQ(*gen, gens[gens.size() - 2]);  // fell back one generation
}

TEST(Checkpoint, BitFlippedSnapshotDetectedAndSkipped) {
  ScratchDir dir("bitflip");
  OnlineConfig config = base_config();
  config.checkpoint_dir = dir.path();
  OnlineMonitor monitor(config);
  for (const auto& r : make_feed()) monitor.ingest(r);
  monitor.flush();

  const std::vector<std::size_t> gens =
      checkpoint::list_generations(dir.path());
  ASSERT_GE(gens.size(), 2u);
  const std::string newest =
      dir.path() + "/" + checkpoint::generation_filename(gens.back());

  // Flip one bit in the middle of the file (inside some section payload).
  std::string image;
  {
    std::ifstream in(newest, std::ios::binary);
    image.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  image[image.size() / 2] = static_cast<char>(image[image.size() / 2] ^ 0x10);
  {
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
  }
  EXPECT_THROW(checkpoint::verify_snapshot(newest), CorruptData);

  OnlineMonitor recovered(config);
  const auto gen = recovered.restore_latest(dir.path());
  ASSERT_TRUE(gen.has_value());
  EXPECT_EQ(*gen, gens[gens.size() - 2]);
}

TEST(Checkpoint, FailedSnapshotWriteLeavesPreviousGenerationIntact) {
  ScratchDir dir("failed-write");
  OnlineConfig config = base_config();
  config.checkpoint_dir = dir.path();
  OnlineMonitor monitor(config);
  const std::vector<rating::Rating> feed = make_feed();
  const std::size_t half = feed.size() / 2;
  for (std::size_t i = 0; i < half; ++i) monitor.ingest(feed[i]);
  const std::vector<std::size_t> before =
      checkpoint::list_generations(dir.path());
  ASSERT_FALSE(before.empty());

  // Every later checkpoint write dies at the body; ingest surfaces the
  // injected IoError, and no new generation may be published.
  util::arm_failpoints("checkpoint.write.body:short,every=1");
  bool crashed = false;
  try {
    for (std::size_t i = half; i < feed.size(); ++i) monitor.ingest(feed[i]);
    monitor.flush();
  } catch (const IoError&) {
    crashed = true;
  }
  util::disarm_failpoints();
  ASSERT_TRUE(crashed);

  const std::vector<std::size_t> after =
      checkpoint::list_generations(dir.path());
  EXPECT_EQ(after, before);
  for (std::size_t gen : after) {
    EXPECT_NO_THROW(checkpoint::verify_snapshot(
        dir.path() + "/" + checkpoint::generation_filename(gen)));
  }
}

TEST(Checkpoint, InjectedCorruptionCaughtByChecksumOnRestore) {
  ScratchDir dir("inject-corrupt");
  OnlineConfig config = base_config();
  config.checkpoint_dir = dir.path();
  OnlineMonitor monitor(config);
  const std::vector<rating::Rating> feed = make_feed();
  const std::size_t half = feed.size() / 2;
  for (std::size_t i = 0; i < half; ++i) monitor.ingest(feed[i]);
  const std::vector<std::size_t> before =
      checkpoint::list_generations(dir.path());
  ASSERT_FALSE(before.empty());

  // The next snapshot write flips one bit after the checksums were
  // computed — a published-but-rotten generation.
  util::arm_failpoints("checkpoint.write.body:corrupt,seed=11");
  std::size_t next = half;
  while (next < feed.size() &&
         util::failpoint_fires("checkpoint.write.body") == 0) {
    monitor.ingest(feed[next++]);
  }
  util::disarm_failpoints();
  const std::vector<std::size_t> after =
      checkpoint::list_generations(dir.path());
  ASSERT_GT(after.size(), 0u);
  ASSERT_GT(after.back(), before.empty() ? 0 : before.back());

  const std::string rotten =
      dir.path() + "/" + checkpoint::generation_filename(after.back());
  EXPECT_THROW(checkpoint::verify_snapshot(rotten), CorruptData);

  // restore_latest skips the rotten generation and lands on a valid one.
  OnlineMonitor recovered(config);
  const auto gen = recovered.restore_latest(dir.path());
  ASSERT_TRUE(gen.has_value());
  EXPECT_LT(*gen, after.back());
}

TEST(Checkpoint, SnapshotOfEmptyMonitorRoundTrips) {
  ScratchDir dir("fresh");
  fs::create_directories(dir.path());
  const std::string path = dir.path() + "/snap.rabck";
  OnlineMonitor original(base_config());
  original.save_checkpoint(path);
  OnlineMonitor restored(base_config());
  restored.restore_checkpoint(path);
  EXPECT_EQ(observe(restored), observe(original));
  EXPECT_EQ(restored.ingested(), 0u);
}

}  // namespace
}  // namespace rab::detectors
