// Cross-grid invariants: every attack archetype evaluated under every
// scheme. These pin the global ordering structure the paper's comparison
// rests on, over the whole strategy space rather than cherry-picked cases.
#include <gtest/gtest.h>

#include <map>

#include "aggregation/bf_scheme.hpp"
#include "aggregation/p_scheme.hpp"
#include "aggregation/sa_scheme.hpp"
#include "challenge/participants.hpp"

namespace rab::challenge {
namespace {

struct GridFixture {
  Challenge challenge = Challenge::make_default(777);
  ParticipantPopulation population{challenge, 19};
  aggregation::SaScheme sa;
  aggregation::BfScheme bf;
  aggregation::PScheme p;

  /// MP of one draw of `kind` under `scheme`.
  double mp(StrategyKind kind, std::uint64_t stream,
            const aggregation::AggregationScheme& scheme) const {
    return challenge.evaluate(population.make(kind, stream), scheme)
        .overall;
  }
};

const GridFixture& grid() {
  static const GridFixture instance;
  return instance;
}

class StrategyGrid : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(StrategyGrid, PSchemeNeverMuchWorseThanSa) {
  // The defense may not help against every single draw, but it must never
  // materially amplify an attack.
  const StrategyKind kind = GetParam();
  for (std::uint64_t stream = 0; stream < 2; ++stream) {
    const double sa_mp = grid().mp(kind, stream, grid().sa);
    const double p_mp = grid().mp(kind, stream, grid().p);
    EXPECT_LE(p_mp, 1.15 * sa_mp + 0.1)
        << to_string(kind) << " stream " << stream;
  }
}

TEST_P(StrategyGrid, PSchemeHelpsOnAverage) {
  const StrategyKind kind = GetParam();
  double sa_sum = 0.0;
  double p_sum = 0.0;
  for (std::uint64_t stream = 0; stream < 3; ++stream) {
    sa_sum += grid().mp(kind, stream, grid().sa);
    p_sum += grid().mp(kind, stream, grid().p);
  }
  EXPECT_LT(p_sum, sa_sum) << to_string(kind);
}

TEST_P(StrategyGrid, BfNeverMuchWorseThanSa) {
  const StrategyKind kind = GetParam();
  for (std::uint64_t stream = 0; stream < 2; ++stream) {
    const double sa_mp = grid().mp(kind, stream, grid().sa);
    const double bf_mp = grid().mp(kind, stream, grid().bf);
    EXPECT_LE(bf_mp, 1.15 * sa_mp + 0.1)
        << to_string(kind) << " stream " << stream;
  }
}

TEST_P(StrategyGrid, MpFiniteAndNonNegativeEverywhere) {
  const StrategyKind kind = GetParam();
  for (const aggregation::AggregationScheme* scheme :
       {static_cast<const aggregation::AggregationScheme*>(&grid().sa),
        static_cast<const aggregation::AggregationScheme*>(&grid().bf),
        static_cast<const aggregation::AggregationScheme*>(&grid().p)}) {
    const double mp = grid().mp(kind, 0, *scheme);
    EXPECT_TRUE(std::isfinite(mp)) << to_string(kind);
    EXPECT_GE(mp, 0.0) << to_string(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyGrid,
    ::testing::ValuesIn(all_strategies()),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rab::challenge
