// Tests for the beta distribution machinery and the beta trust model.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/beta.hpp"
#include "util/error.hpp"

namespace rab::stats {
namespace {

TEST(IncompleteBeta, Endpoints) {
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, UniformCase) {
  // Beta(1,1) is uniform: I_x = x.
  for (double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBeta, KnownClosedForm) {
  // I_x(2,1) = x^2;  I_x(1,2) = 1-(1-x)^2 = 2x - x^2.
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(regularized_incomplete_beta(2.0, 1.0, x), x * x, 1e-12);
    EXPECT_NEAR(regularized_incomplete_beta(1.0, 2.0, x), 2 * x - x * x,
                1e-12);
  }
}

TEST(IncompleteBeta, SymmetryRelation) {
  for (double x : {0.1, 0.3, 0.6, 0.9}) {
    const double lhs = regularized_incomplete_beta(3.5, 2.25, x);
    const double rhs =
        1.0 - regularized_incomplete_beta(2.25, 3.5, 1.0 - x);
    EXPECT_NEAR(lhs, rhs, 1e-10);
  }
}

TEST(IncompleteBeta, RejectsBadArguments) {
  EXPECT_THROW(regularized_incomplete_beta(0.0, 1.0, 0.5), Error);
  EXPECT_THROW(regularized_incomplete_beta(1.0, -1.0, 0.5), Error);
  EXPECT_THROW(regularized_incomplete_beta(1.0, 1.0, 1.5), Error);
}

TEST(BetaDist, RejectsNonPositiveParams) {
  EXPECT_THROW(Beta(0.0, 1.0), Error);
  EXPECT_THROW(Beta(1.0, 0.0), Error);
}

TEST(BetaDist, Mean) {
  EXPECT_DOUBLE_EQ(Beta(2.0, 2.0).mean(), 0.5);
  EXPECT_DOUBLE_EQ(Beta(8.0, 2.0).mean(), 0.8);
}

TEST(BetaDist, PdfIntegratesToCdf) {
  // Trapezoid integration of the pdf should reproduce the cdf.
  const Beta b(3.0, 5.0);
  const int steps = 2000;
  double integral = 0.0;
  double prev = b.pdf(0.0);
  for (int i = 1; i <= steps; ++i) {
    const double x = static_cast<double>(i) / steps;
    const double cur = b.pdf(x);
    integral += 0.5 * (prev + cur) / steps;
    prev = cur;
    if (i % 500 == 0) {
      EXPECT_NEAR(integral, b.cdf(x), 1e-3);
    }
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(BetaDist, PdfEdgeCases) {
  EXPECT_DOUBLE_EQ(Beta(2.0, 2.0).pdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(Beta(2.0, 2.0).pdf(1.0), 0.0);
  EXPECT_TRUE(std::isinf(Beta(0.5, 1.0).pdf(0.0)));
  EXPECT_DOUBLE_EQ(Beta(1.0, 3.0).pdf(0.0), 3.0);
}

TEST(BetaDist, CdfMonotone) {
  const Beta b(2.5, 4.0);
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double c = b.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(BetaDist, QuantileEndpoints) {
  const Beta b(2.0, 5.0);
  EXPECT_DOUBLE_EQ(b.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(b.quantile(1.0), 1.0);
}

TEST(BetaDist, QuantileInvertsUniform) {
  const Beta b(1.0, 1.0);
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(b.quantile(p), p, 1e-9);
  }
}

/// Round-trip property across a parameter grid.
class BetaRoundTrip
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(BetaRoundTrip, CdfQuantileRoundTrip) {
  const auto [alpha, beta] = GetParam();
  const Beta b(alpha, beta);
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = b.quantile(p);
    EXPECT_NEAR(b.cdf(x), p, 1e-8)
        << "alpha=" << alpha << " beta=" << beta << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, BetaRoundTrip,
    ::testing::Values(std::pair{1.0, 1.0}, std::pair{2.0, 1.0},
                      std::pair{1.0, 2.0}, std::pair{0.5, 0.5},
                      std::pair{5.0, 2.0}, std::pair{2.0, 8.0},
                      std::pair{30.0, 10.0}, std::pair{80.0, 20.0}));

TEST(BetaTrust, NoEvidenceIsHalf) {
  EXPECT_DOUBLE_EQ(beta_trust(0.0, 0.0), 0.5);
}

TEST(BetaTrust, SuccessesRaiseTrust) {
  EXPECT_DOUBLE_EQ(beta_trust(8.0, 0.0), 0.9);
  EXPECT_GT(beta_trust(100.0, 0.0), 0.98);
}

TEST(BetaTrust, FailuresLowerTrust) {
  EXPECT_DOUBLE_EQ(beta_trust(0.0, 8.0), 0.1);
  EXPECT_LT(beta_trust(0.0, 100.0), 0.02);
}

TEST(BetaTrust, BalancedEvidenceStaysHalf) {
  EXPECT_DOUBLE_EQ(beta_trust(5.0, 5.0), 0.5);
}

TEST(BetaTrust, RejectsNegativeCounts) {
  EXPECT_THROW(beta_trust(-1.0, 0.0), Error);
  EXPECT_THROW(beta_trust(0.0, -1.0), Error);
}

TEST(BetaTrust, MatchesBetaMean) {
  // (S+1)/(S+F+2) is the mean of Beta(S+1, F+1).
  for (double s : {0.0, 3.0, 10.0}) {
    for (double f : {0.0, 2.0, 7.0}) {
      EXPECT_NEAR(beta_trust(s, f), Beta(s + 1.0, f + 1.0).mean(), 1e-12);
    }
  }
}

}  // namespace
}  // namespace rab::stats
