// Compile check for the umbrella header plus a smoke test that drives the
// whole public API surface through it.
#include <gtest/gtest.h>

#include "rab.hpp"

namespace {

TEST(Umbrella, WholeApiReachable) {
  using namespace rab;
  const challenge::Challenge c = challenge::Challenge::make_default(99);
  const core::AttackGenerator generator(c, 1);
  core::AttackProfile profile;
  profile.bias = -2.0;
  profile.sigma = 0.8;
  const challenge::Submission attack = generator.generate(profile, 0);
  const aggregation::PScheme p;
  const challenge::MpResult mp = c.evaluate(attack, p);
  EXPECT_GE(mp.overall, 0.0);
  EXPECT_TRUE(std::isfinite(mp.overall));
}

}  // namespace
