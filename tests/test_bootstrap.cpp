// Tests for percentile-bootstrap confidence intervals.
#include <gtest/gtest.h>

#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rab::stats {
namespace {

TEST(Bootstrap, RejectsBadArguments) {
  Rng rng(1);
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(bootstrap_mean_ci({}, rng), Error);
  EXPECT_THROW(bootstrap_mean_ci(xs, rng, 5), Error);
  EXPECT_THROW(bootstrap_mean_ci(xs, rng, 100, 0.0), Error);
  EXPECT_THROW(bootstrap_ci(xs, nullptr, rng), Error);
}

TEST(Bootstrap, DegenerateSampleCollapses) {
  Rng rng(2);
  const std::vector<double> xs(20, 3.0);
  const BootstrapCi ci = bootstrap_mean_ci(xs, rng);
  EXPECT_DOUBLE_EQ(ci.estimate, 3.0);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

TEST(Bootstrap, IntervalBracketsEstimate) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.gaussian(5.0, 2.0));
  Rng boot(4);
  const BootstrapCi ci = bootstrap_mean_ci(xs, boot);
  EXPECT_LE(ci.lo, ci.estimate);
  EXPECT_GE(ci.hi, ci.estimate);
  EXPECT_NEAR(ci.estimate, mean(xs), 1e-12);
}

TEST(Bootstrap, WidthShrinksWithSampleSize) {
  Rng data_rng(5);
  auto width_for = [&](int n) {
    std::vector<double> xs;
    for (int i = 0; i < n; ++i) xs.push_back(data_rng.gaussian(0.0, 1.0));
    Rng boot(6);
    const BootstrapCi ci = bootstrap_mean_ci(xs, boot, 500);
    return ci.hi - ci.lo;
  };
  EXPECT_GT(width_for(25), width_for(400));
}

TEST(Bootstrap, CoversTrueMeanUsually) {
  // 95% CI should cover the true mean in the vast majority of trials.
  Rng rng(7);
  int covered = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs;
    for (int i = 0; i < 60; ++i) xs.push_back(rng.gaussian(2.0, 1.0));
    Rng boot(100 + static_cast<std::uint64_t>(t));
    const BootstrapCi ci = bootstrap_mean_ci(xs, boot, 400);
    if (ci.lo <= 2.0 && 2.0 <= ci.hi) ++covered;
  }
  EXPECT_GE(covered, trials - 6);
}

TEST(Bootstrap, CustomStatistic) {
  Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.uniform(0.0, 10.0));
  Rng boot(9);
  const BootstrapCi ci = bootstrap_ci(
      xs,
      [](std::span<const double> sample) {
        std::vector<double> copy(sample.begin(), sample.end());
        return quantile(std::move(copy), 0.5);
      },
      boot, 400);
  EXPECT_NEAR(ci.estimate, 5.0, 1.0);
  EXPECT_LT(ci.lo, ci.estimate + 1e-12);
  EXPECT_GT(ci.hi, ci.estimate - 1e-12);
}

}  // namespace
}  // namespace rab::stats
