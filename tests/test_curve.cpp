// Tests for indicator-curve peak detection and interval extraction.
#include <gtest/gtest.h>

#include "signal/curve.hpp"

namespace rab::signal {
namespace {

Curve from_values(const std::vector<double>& values) {
  Curve c;
  for (std::size_t i = 0; i < values.size(); ++i) {
    c.push_back(CurvePoint{static_cast<double>(i), values[i]});
  }
  return c;
}

TEST(FindPeaks, EmptyCurve) {
  EXPECT_TRUE(find_peaks({}, {}).empty());
}

TEST(FindPeaks, SinglePointAboveHeight) {
  PeakOptions opts;
  opts.min_height = 1.0;
  const Curve c = from_values({2.0});
  EXPECT_EQ(find_peaks(c, opts).size(), 1u);
  opts.min_height = 3.0;
  EXPECT_TRUE(find_peaks(c, opts).empty());
}

TEST(FindPeaks, InteriorPeak) {
  const Curve c = from_values({0.0, 1.0, 3.0, 1.0, 0.0});
  const auto peaks = find_peaks(c, {});
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 2u);
}

TEST(FindPeaks, EndpointPeaks) {
  const Curve c = from_values({5.0, 1.0, 0.5, 1.0, 4.0});
  const auto peaks = find_peaks(c, {});
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 0u);
  EXPECT_EQ(peaks[1], 4u);
}

TEST(FindPeaks, MinHeightFilters) {
  PeakOptions opts;
  opts.min_height = 2.5;
  const Curve c = from_values({0.0, 2.0, 0.0, 3.0, 0.0});
  const auto peaks = find_peaks(c, opts);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 3u);
}

TEST(FindPeaks, PlateauReportsFirstIndex) {
  const Curve c = from_values({0.0, 2.0, 2.0, 2.0, 0.0});
  const auto peaks = find_peaks(c, {});
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 1u);
}

TEST(FindPeaks, MinSeparationKeepsTaller) {
  PeakOptions opts;
  opts.min_separation = 5.0;
  const Curve c = from_values({0.0, 2.0, 0.0, 4.0, 0.0});
  // Peaks at t=1 and t=3 are 2 apart < 5: the taller (index 3) wins.
  const auto peaks = find_peaks(c, opts);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 3u);
}

TEST(FindPeaks, SeparatedPeaksBothKept) {
  PeakOptions opts;
  opts.min_separation = 1.5;
  const Curve c = from_values({0.0, 2.0, 0.0, 4.0, 0.0});
  EXPECT_EQ(find_peaks(c, opts).size(), 2u);
}

TEST(Segments, NoPeaksOneSegment) {
  const Curve c = from_values({1.0, 1.0, 1.0});
  const auto segs = segments_between_peaks(c, {});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_DOUBLE_EQ(segs[0].begin, 0.0);
  EXPECT_GT(segs[0].end, 2.0);  // right-inclusive end
}

TEST(Segments, PeaksSplitSpan) {
  const Curve c = from_values({0.0, 3.0, 0.0, 3.0, 0.0});
  const auto segs = segments_between_peaks(c, {1, 3});
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_DOUBLE_EQ(segs[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(segs[0].end, 1.0);
  EXPECT_DOUBLE_EQ(segs[1].begin, 1.0);
  EXPECT_DOUBLE_EQ(segs[1].end, 3.0);
  EXPECT_DOUBLE_EQ(segs[2].begin, 3.0);
}

TEST(Segments, LastRatingFallsInLastSegment) {
  const Curve c = from_values({0.0, 3.0, 0.0});
  const auto segs = segments_between_peaks(c, {1});
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_TRUE(segs.back().contains(2.0));
}

TEST(Segments, EmptyCurve) {
  EXPECT_TRUE(segments_between_peaks({}, {}).empty());
}

TEST(MaxInInterval, FindsMaximum) {
  const Curve c = from_values({1.0, 5.0, 2.0, 7.0});
  EXPECT_DOUBLE_EQ(max_in_interval(c, Interval{0.0, 3.0}), 5.0);
  EXPECT_DOUBLE_EQ(max_in_interval(c, Interval{0.0, 4.0}), 7.0);
  EXPECT_DOUBLE_EQ(max_in_interval(c, Interval{10.0, 20.0}), 0.0);
}

TEST(IntervalsBelow, FindsLowRegions) {
  const Curve c = from_values({1.0, 0.2, 0.3, 1.0, 0.1, 1.0});
  const auto regions = intervals_below(c, 0.5);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_DOUBLE_EQ(regions[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(regions[0].end, 3.0);
  EXPECT_DOUBLE_EQ(regions[1].begin, 4.0);
  EXPECT_DOUBLE_EQ(regions[1].end, 5.0);
}

TEST(IntervalsBelow, OpenAtEndIsClosed) {
  const Curve c = from_values({1.0, 0.2, 0.1});
  const auto regions = intervals_below(c, 0.5);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_GT(regions[0].end, 2.0);  // right-inclusive end
}

TEST(IntervalsAbove, ComplementaryToBelow) {
  const Curve c = from_values({1.0, 0.2, 0.3, 1.0});
  const auto above = intervals_above(c, 0.5);
  ASSERT_EQ(above.size(), 2u);
  EXPECT_DOUBLE_EQ(above[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(above[0].end, 1.0);
  EXPECT_DOUBLE_EQ(above[1].begin, 3.0);
}

TEST(IntervalsAbove, AllAboveIsOneInterval) {
  const Curve c = from_values({1.0, 2.0, 3.0});
  const auto above = intervals_above(c, 0.5);
  ASSERT_EQ(above.size(), 1u);
  EXPECT_DOUBLE_EQ(above[0].begin, 0.0);
  EXPECT_GT(above[0].end, 2.0);
}

TEST(IntervalsAbove, EmptyCurve) {
  EXPECT_TRUE(intervals_above({}, 0.5).empty());
  EXPECT_TRUE(intervals_below({}, 0.5).empty());
}

}  // namespace
}  // namespace rab::signal
