// Tests for the deterministic fault-injection framework (util/failpoint).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace rab::util {
namespace {

/// Every test leaves the process disarmed — a leaked policy would inject
/// faults into unrelated tests.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { disarm_failpoints(); }
};

TEST_F(FailpointTest, DisarmedSitesDoNothing) {
  ASSERT_FALSE(failpoints_armed());
  EXPECT_NO_THROW(RAB_FAILPOINT("cache.insert"));
  const FaultOutcome out = failpoint_io("checkpoint.write.body", 100);
  EXPECT_EQ(out.write_bytes, 100u);
  EXPECT_FALSE(out.corrupt);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  arm_failpoints("cache.insert:throw");
  EXPECT_TRUE(failpoints_armed());
  EXPECT_THROW(RAB_FAILPOINT("cache.insert"), IoError);
  // Exhausted after the first fire; later passes are clean.
  EXPECT_NO_THROW(RAB_FAILPOINT("cache.insert"));
  EXPECT_NO_THROW(RAB_FAILPOINT("cache.insert"));
  EXPECT_EQ(failpoint_fires("cache.insert"), 1u);
}

TEST_F(FailpointTest, UnarmedNameStaysClean) {
  arm_failpoints("cache.insert:throw");
  EXPECT_NO_THROW(RAB_FAILPOINT("monitor.analyze"));
  EXPECT_EQ(failpoint_fires("monitor.analyze"), 0u);
}

TEST_F(FailpointTest, EveryNFiresOnEveryNthPass) {
  arm_failpoints("monitor.analyze:throw,every=3");
  int thrown = 0;
  for (int i = 0; i < 9; ++i) {
    try {
      RAB_FAILPOINT("monitor.analyze");
    } catch (const IoError&) {
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 3);
  EXPECT_EQ(failpoint_fires("monitor.analyze"), 3u);
}

TEST_F(FailpointTest, ProbabilisticIsSeededAndReproducible) {
  const auto run = [] {
    arm_failpoints("csv.read.line:throw,p=0.5,seed=42");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool threw = false;
      try {
        RAB_FAILPOINT("csv.read.line");
      } catch (const IoError&) {
        threw = true;
      }
      fired.push_back(threw);
    }
    return fired;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // p=0.5 over 64 passes fires at least once and spares at least once.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FailpointTest, ShortWriteHalvesTheBuffer) {
  arm_failpoints("checkpoint.write.body:short");
  const FaultOutcome out = failpoint_io("checkpoint.write.body", 100);
  EXPECT_EQ(out.write_bytes, 50u);
  std::string buf(100, 'x');
  EXPECT_EQ(apply_fault(out, buf.data(), buf.size()), 50u);
  EXPECT_EQ(buf, std::string(100, 'x'));  // short write never mutates
}

TEST_F(FailpointTest, CorruptFlipsExactlyOneBit) {
  arm_failpoints("checkpoint.write.body:corrupt,seed=7");
  const FaultOutcome out = failpoint_io("checkpoint.write.body", 64);
  ASSERT_TRUE(out.corrupt);
  EXPECT_EQ(out.write_bytes, 64u);
  EXPECT_LT(out.corrupt_offset, 64u);
  EXPECT_NE(out.corrupt_mask, 0);

  std::string buf(64, '\0');
  EXPECT_EQ(apply_fault(out, buf.data(), buf.size()), 64u);
  int flipped_bits = 0;
  for (char c : buf) {
    for (int b = 0; b < 8; ++b) {
      if ((static_cast<unsigned char>(c) >> b) & 1u) ++flipped_bits;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST_F(FailpointTest, ThrowAtIoSiteThrows) {
  arm_failpoints("checkpoint.write.body:throw");
  EXPECT_THROW((void)failpoint_io("checkpoint.write.body", 10), IoError);
}

TEST_F(FailpointTest, ControlFlowSiteDegradesShortAndCorruptToThrow) {
  arm_failpoints("monitor.analyze:short");
  EXPECT_THROW(RAB_FAILPOINT("monitor.analyze"), IoError);
  arm_failpoints("monitor.analyze:corrupt");
  EXPECT_THROW(RAB_FAILPOINT("monitor.analyze"), IoError);
}

TEST_F(FailpointTest, RejectsUnknownNameAndMalformedSpecs) {
  EXPECT_THROW(arm_failpoints("no.such.failpoint:throw"), InvalidArgument);
  EXPECT_THROW(arm_failpoints("cache.insert"), InvalidArgument);
  EXPECT_THROW(arm_failpoints("cache.insert:explode"), InvalidArgument);
  EXPECT_THROW(arm_failpoints("cache.insert:throw,every=0"), InvalidArgument);
  EXPECT_THROW(arm_failpoints("cache.insert:throw,p=1.5"), InvalidArgument);
  EXPECT_THROW(arm_failpoints("cache.insert:throw,every=x"), InvalidArgument);
  // A failed arm must not leave anything armed.
  EXPECT_FALSE(failpoints_armed());
}

TEST_F(FailpointTest, MultiplePoliciesArmIndependently) {
  arm_failpoints("cache.insert:throw;monitor.compact:throw,every=2");
  EXPECT_THROW(RAB_FAILPOINT("cache.insert"), IoError);
  EXPECT_NO_THROW(RAB_FAILPOINT("monitor.compact"));   // pass 1 of every=2
  EXPECT_THROW(RAB_FAILPOINT("monitor.compact"), IoError);  // pass 2
}

TEST_F(FailpointTest, DisarmRestoresFastPath) {
  arm_failpoints("cache.insert:throw,every=1");
  disarm_failpoints();
  EXPECT_FALSE(failpoints_armed());
  EXPECT_NO_THROW(RAB_FAILPOINT("cache.insert"));
}

TEST_F(FailpointTest, EnvArmIsExplicitOptIn) {
  ::setenv("RAB_FAULTS", "cache.insert:throw", 1);
  // Nothing armed until an entry point opts in.
  EXPECT_FALSE(failpoints_armed());
  arm_failpoints_from_env();
  EXPECT_TRUE(failpoints_armed());
  ::unsetenv("RAB_FAULTS");
  disarm_failpoints();
  arm_failpoints_from_env();  // unset env: no-op
  EXPECT_FALSE(failpoints_armed());
}

TEST_F(FailpointTest, CatalogIsNonEmptyAndArmable) {
  const auto catalog = failpoint_catalog();
  ASSERT_GE(catalog.size(), 16u);
  for (const std::string_view name : catalog) {
    EXPECT_NO_THROW(arm_failpoints(std::string(name) + ":throw")) << name;
  }
}

}  // namespace
}  // namespace rab::util
