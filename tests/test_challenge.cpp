// Tests for the challenge harness: MP metric, rules, validation.
#include <gtest/gtest.h>

#include "aggregation/sa_scheme.hpp"
#include "challenge/challenge.hpp"
#include "rating/fair_generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rab::challenge {
namespace {

Challenge small_challenge(std::uint64_t seed = 3) {
  rating::FairDataConfig config;
  config.product_count = 4;
  config.history_days = 120.0;
  config.seed = seed;
  ChallengeConfig rules;
  rules.boost_targets = {ProductId(2)};
  rules.downgrade_targets = {ProductId(1)};
  return Challenge(rating::FairDataGenerator(config).generate(), rules);
}

Submission valid_submission(const Challenge& challenge,
                            double value = 0.0, std::size_t count = 20) {
  Submission s;
  s.label = "test";
  Rng rng(7);
  const Interval window = challenge.config().window;
  for (std::size_t i = 0; i < count; ++i) {
    rating::Rating r;
    r.time = rng.uniform(window.begin, window.end - 0.01);
    r.value = value;
    r.rater = challenge.attacker(i);
    r.product = ProductId(1);
    r.unfair = true;
    s.ratings.push_back(r);
  }
  return s;
}

// ------------------------------------------------------------ top_two_sum

TEST(TopTwoSum, Empty) { EXPECT_DOUBLE_EQ(top_two_sum({}), 0.0); }

TEST(TopTwoSum, Single) { EXPECT_DOUBLE_EQ(top_two_sum({1.5}), 1.5); }

TEST(TopTwoSum, PicksTwoLargest) {
  EXPECT_DOUBLE_EQ(top_two_sum({0.5, 3.0, 1.0, 2.0}), 5.0);
}

TEST(TopTwoSum, HandlesDuplicates) {
  EXPECT_DOUBLE_EQ(top_two_sum({2.0, 2.0, 2.0}), 4.0);
}

TEST(TopTwoSum, ExactlyTwoElementsSumBoth) {
  EXPECT_DOUBLE_EQ(top_two_sum({1.25, 0.75}), 2.0);
  EXPECT_DOUBLE_EQ(top_two_sum({0.0, 3.0}), 3.0);
}

TEST(TopTwoSum, RejectsNegativeDeltas) {
  // Deltas are absolute differences; the scan relies on >= 0 and must say
  // so loudly instead of silently dropping negative input.
  EXPECT_THROW(top_two_sum({1.0, -0.5}), LogicError);
}

// ------------------------------------------------------------ Submission

TEST(Submission, ForProductFiltersAndSorts) {
  Submission s;
  rating::Rating a;
  a.time = 5.0;
  a.product = ProductId(1);
  rating::Rating b;
  b.time = 1.0;
  b.product = ProductId(1);
  rating::Rating c;
  c.time = 3.0;
  c.product = ProductId(2);
  s.ratings = {a, b, c};
  const auto rs = s.for_product(ProductId(1));
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_DOUBLE_EQ(rs[0].time, 1.0);
  EXPECT_DOUBLE_EQ(rs[1].time, 5.0);
}

TEST(Submission, AverageInterval) {
  Submission s;
  for (double t : {0.0, 10.0, 20.0, 30.0}) {
    rating::Rating r;
    r.time = t;
    r.product = ProductId(1);
    s.ratings.push_back(r);
  }
  // span 30 days / 4 ratings
  EXPECT_DOUBLE_EQ(s.average_interval(ProductId(1)), 7.5);
  EXPECT_DOUBLE_EQ(s.average_interval(ProductId(9)), 0.0);
}

TEST(Submission, ValueStatsBiasAndSpread) {
  Submission s;
  for (double v : {1.0, 2.0, 3.0}) {
    rating::Rating r;
    r.value = v;
    r.product = ProductId(1);
    s.ratings.push_back(r);
  }
  const ValueStats stats = value_stats(s, ProductId(1), 4.0);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.bias, -2.0);
  EXPECT_NEAR(stats.stddev, std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(Submission, ValueStatsEmptyProduct) {
  Submission s;
  const ValueStats stats = value_stats(s, ProductId(1), 4.0);
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.bias, 0.0);
}

// ------------------------------------------------------------ Challenge

TEST(ChallengeRules, DefaultWindowTrailing) {
  const Challenge c = small_challenge();
  const Interval window = c.config().window;
  const Interval span = c.fair().span();
  EXPECT_NEAR(window.end, span.end, 1e-9);
  EXPECT_NEAR(window.length(), 82.0, 1.0);
}

TEST(ChallengeRules, TargetsCombineBoostAndDowngrade) {
  const Challenge c = small_challenge();
  const auto targets = c.targets();
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0], ProductId(2));
  EXPECT_EQ(targets[1], ProductId(1));
}

TEST(ChallengeRules, UnknownTargetRejectedAtConstruction) {
  rating::FairDataConfig config;
  config.product_count = 2;
  ChallengeConfig rules;
  rules.boost_targets = {ProductId(99)};
  EXPECT_THROW(
      Challenge(rating::FairDataGenerator(config).generate(), rules), Error);
}

TEST(ChallengeRules, ValidSubmissionPasses) {
  const Challenge c = small_challenge();
  EXPECT_EQ(c.validate(valid_submission(c)), Violation::kNone);
}

TEST(ChallengeRules, EmptySubmissionRejected) {
  const Challenge c = small_challenge();
  EXPECT_EQ(c.validate(Submission{}), Violation::kEmptySubmission);
}

TEST(ChallengeRules, ValueOutOfRangeRejected) {
  const Challenge c = small_challenge();
  Submission s = valid_submission(c);
  s.ratings.front().value = 5.5;
  EXPECT_EQ(c.validate(s), Violation::kValueOutOfRange);
}

TEST(ChallengeRules, TimeOutsideWindowRejected) {
  const Challenge c = small_challenge();
  Submission s = valid_submission(c);
  s.ratings.front().time = c.config().window.begin - 1.0;
  EXPECT_EQ(c.validate(s), Violation::kTimeOutsideWindow);
}

TEST(ChallengeRules, UntargetedProductRejected) {
  const Challenge c = small_challenge();
  Submission s = valid_submission(c);
  s.ratings.front().product = ProductId(3);  // exists but not a target
  EXPECT_EQ(c.validate(s), Violation::kUntargetedProduct);
}

TEST(ChallengeRules, TooManyRatersRejected) {
  const Challenge c = small_challenge();
  Submission s;
  Rng rng(9);
  const Interval window = c.config().window;
  for (std::size_t i = 0; i < c.config().attack_raters + 1; ++i) {
    rating::Rating r;
    r.time = rng.uniform(window.begin, window.end - 0.01);
    r.value = 0.0;
    r.rater = RaterId(c.config().attacker_id_base +
                      static_cast<std::int64_t>(i));
    r.product = ProductId(1);
    s.ratings.push_back(r);
  }
  EXPECT_EQ(c.validate(s), Violation::kTooManyRaters);
}

TEST(ChallengeRules, DuplicateProductRatingRejected) {
  const Challenge c = small_challenge();
  Submission s = valid_submission(c);
  s.ratings.push_back(s.ratings.front());
  EXPECT_EQ(c.validate(s), Violation::kDuplicateProductRating);
}

TEST(ChallengeRules, EvaluateThrowsOnInvalid) {
  const Challenge c = small_challenge();
  Submission s = valid_submission(c);
  s.ratings.front().value = -1.0;
  const aggregation::SaScheme scheme;
  EXPECT_THROW((void)c.evaluate(s, scheme), InvalidArgument);
}

TEST(ChallengeRules, AttackerIdsWithinSquad) {
  const Challenge c = small_challenge();
  EXPECT_EQ(c.attacker(0).value(), c.config().attacker_id_base);
  EXPECT_THROW((void)c.attacker(c.config().attack_raters), Error);
}

TEST(ChallengeRules, ViolationNames) {
  EXPECT_STREQ(to_string(Violation::kNone), "none");
  EXPECT_NE(std::string(to_string(Violation::kTooManyRaters)).find("raters"),
            std::string::npos);
}

// ------------------------------------------------------------ MP metric

TEST(MpMetric, NoAttackZeroMp) {
  const Challenge c = small_challenge();
  const aggregation::SaScheme scheme;
  const MpResult mp = c.metric().evaluate_dataset(c.fair(), scheme);
  EXPECT_DOUBLE_EQ(mp.overall, 0.0);
}

TEST(MpMetric, DowngradeAttackPositiveMp) {
  const Challenge c = small_challenge();
  const aggregation::SaScheme scheme;
  const MpResult mp = c.evaluate(valid_submission(c, 0.0, 20), scheme);
  EXPECT_GT(mp.overall, 0.2);
  EXPECT_GT(mp.per_product.at(ProductId(1)), 0.2);
  EXPECT_DOUBLE_EQ(mp.per_product.at(ProductId(2)), 0.0);
}

TEST(MpMetric, OverallSumsPerProduct) {
  const Challenge c = small_challenge();
  const aggregation::SaScheme scheme;
  const MpResult mp = c.evaluate(valid_submission(c, 0.0, 20), scheme);
  double sum = 0.0;
  for (const auto& [id, value] : mp.per_product) sum += value;
  EXPECT_NEAR(mp.overall, sum, 1e-12);
}

TEST(MpMetric, PerProductIsTopTwoDeltaSum) {
  const Challenge c = small_challenge();
  const aggregation::SaScheme scheme;
  const MpResult mp = c.evaluate(valid_submission(c, 0.0, 20), scheme);
  for (const auto& [id, value] : mp.per_product) {
    EXPECT_NEAR(value, top_two_sum(mp.deltas.at(id)), 1e-12);
  }
}

TEST(MpMetric, MoreRatersMoreMp) {
  const Challenge c = small_challenge();
  const aggregation::SaScheme scheme;
  const MpResult small = c.evaluate(valid_submission(c, 0.0, 5), scheme);
  const MpResult large = c.evaluate(valid_submission(c, 0.0, 50), scheme);
  EXPECT_GT(large.overall, small.overall);
}

TEST(MpMetric, CachesFairBaselinePerScheme) {
  const Challenge c = small_challenge();
  const aggregation::SaScheme scheme;
  // Two evaluations must agree exactly (baseline cached, deterministic).
  const Submission s = valid_submission(c, 0.0, 20);
  const MpResult a = c.evaluate(s, scheme);
  const MpResult b = c.evaluate(s, scheme);
  EXPECT_DOUBLE_EQ(a.overall, b.overall);
}

TEST(MpMetric, RejectsSpanExtendingDataset) {
  const Challenge c = small_challenge();
  rating::Rating outside;
  outside.time = c.fair().span().end + 10.0;
  outside.value = 0.0;
  outside.rater = RaterId(1);
  outside.product = ProductId(1);
  const rating::Dataset extended =
      c.fair().with_added(std::vector<rating::Rating>{outside});
  const aggregation::SaScheme scheme;
  EXPECT_THROW((void)c.metric().evaluate_dataset(extended, scheme), Error);
}

TEST(MpMetric, RejectsBadBinDays) {
  rating::FairDataConfig config;
  config.product_count = 1;
  EXPECT_THROW(
      MpMetric(rating::FairDataGenerator(config).generate(), 0.0), Error);
}

}  // namespace
}  // namespace rab::challenge
