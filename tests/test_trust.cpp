// Tests for the trust manager (Procedure 1).
#include <gtest/gtest.h>

#include <functional>

#include "trust/trust_manager.hpp"
#include "util/error.hpp"

namespace rab::trust {
namespace {

TEST(TrustManager, UnknownRaterStartsAtHalf) {
  TrustManager manager;
  EXPECT_DOUBLE_EQ(manager.trust(RaterId(1)), 0.5);
  EXPECT_EQ(manager.known_raters(), 0u);
}

TEST(TrustManager, CleanEpochRaisesTrust) {
  TrustManager manager;
  manager.record(RaterId(1), EpochCounts{.ratings = 8, .suspicious = 0});
  // (8+1)/(8+0+2) = 0.9
  EXPECT_DOUBLE_EQ(manager.trust(RaterId(1)), 0.9);
}

TEST(TrustManager, SuspiciousEpochLowersTrust) {
  TrustManager manager;
  manager.record(RaterId(1), EpochCounts{.ratings = 8, .suspicious = 8});
  EXPECT_DOUBLE_EQ(manager.trust(RaterId(1)), 0.1);
}

TEST(TrustManager, MixedEvidenceAccumulates) {
  TrustManager manager;
  manager.record(RaterId(1), EpochCounts{.ratings = 4, .suspicious = 1});
  manager.record(RaterId(1), EpochCounts{.ratings = 6, .suspicious = 2});
  // S = 3 + 4 = 7, F = 1 + 2 = 3 -> (7+1)/(7+3+2) = 8/12
  EXPECT_DOUBLE_EQ(manager.successes(RaterId(1)), 7.0);
  EXPECT_DOUBLE_EQ(manager.failures(RaterId(1)), 3.0);
  EXPECT_DOUBLE_EQ(manager.trust(RaterId(1)), 8.0 / 12.0);
}

TEST(TrustManager, RatersIndependent) {
  TrustManager manager;
  manager.record(RaterId(1), EpochCounts{.ratings = 10, .suspicious = 0});
  manager.record(RaterId(2), EpochCounts{.ratings = 10, .suspicious = 10});
  EXPECT_GT(manager.trust(RaterId(1)), 0.9);
  EXPECT_LT(manager.trust(RaterId(2)), 0.1);
  EXPECT_EQ(manager.known_raters(), 2u);
}

TEST(TrustManager, SuspiciousCannotExceedRatings) {
  TrustManager manager;
  EXPECT_THROW(
      manager.record(RaterId(1), EpochCounts{.ratings = 2, .suspicious = 3}),
      Error);
}

TEST(TrustManager, EmptyEpochIsNoOp) {
  TrustManager manager;
  manager.record(RaterId(1), EpochCounts{});
  // S = F = 0 still: trust unchanged at 0.5, but the rater is now known.
  EXPECT_DOUBLE_EQ(manager.trust(RaterId(1)), 0.5);
  EXPECT_EQ(manager.known_raters(), 1u);
}

TEST(TrustManager, LookupAdapterTracksState) {
  TrustManager manager;
  const std::function<double(RaterId)> lookup = manager.lookup();
  EXPECT_DOUBLE_EQ(lookup(RaterId(9)), 0.5);
  manager.record(RaterId(9), EpochCounts{.ratings = 8, .suspicious = 0});
  EXPECT_DOUBLE_EQ(lookup(RaterId(9)), 0.9);  // lookup sees live state
}

TEST(TrustManager, ResetForgetsEverything) {
  TrustManager manager;
  manager.record(RaterId(1), EpochCounts{.ratings = 10, .suspicious = 10});
  manager.reset();
  EXPECT_DOUBLE_EQ(manager.trust(RaterId(1)), 0.5);
  EXPECT_EQ(manager.known_raters(), 0u);
}

TEST(TrustManager, TrustBoundedInUnitInterval) {
  TrustManager manager;
  for (int epoch = 0; epoch < 50; ++epoch) {
    manager.record(RaterId(1),
                   EpochCounts{.ratings = 20, .suspicious = 20});
    manager.record(RaterId(2), EpochCounts{.ratings = 20, .suspicious = 0});
  }
  EXPECT_GT(manager.trust(RaterId(1)), 0.0);
  EXPECT_LT(manager.trust(RaterId(2)), 1.0);
}

TEST(TrustManager, ConvergesWithEvidence) {
  // Trust approaches 1 (resp. 0) monotonically as clean (resp. suspicious)
  // evidence accumulates.
  TrustManager manager;
  double prev_good = 0.5;
  double prev_bad = 0.5;
  for (int epoch = 0; epoch < 10; ++epoch) {
    manager.record(RaterId(1), EpochCounts{.ratings = 5, .suspicious = 0});
    manager.record(RaterId(2), EpochCounts{.ratings = 5, .suspicious = 5});
    EXPECT_GT(manager.trust(RaterId(1)), prev_good);
    EXPECT_LT(manager.trust(RaterId(2)), prev_bad);
    prev_good = manager.trust(RaterId(1));
    prev_bad = manager.trust(RaterId(2));
  }
  EXPECT_GT(prev_good, 0.9);
  EXPECT_LT(prev_bad, 0.1);
}

}  // namespace
}  // namespace rab::trust
