// Chaos harness: crash the streaming monitor at every catalogued failpoint
// and at random feed positions, recover from the newest valid checkpoint,
// replay the durable feed, and require the recovered run to be
// bit-identical to an uninterrupted one — alarms, per-epoch stats, and raw
// trust evidence, at 1 worker thread and at 8.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "detectors/checkpoint.hpp"
#include "detectors/online_monitor.hpp"
#include "rating/fair_generator.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace rab::detectors {
namespace {

namespace fs = std::filesystem;

std::vector<rating::Rating> burst_attack(ProductId product, double begin,
                                         double end, std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<rating::Rating> out;
  for (std::size_t i = 0; i < count; ++i) {
    rating::Rating r;
    r.time = rng.uniform(begin, end);
    r.value = 0.0;
    r.rater = RaterId(1'000'000 + static_cast<std::int64_t>(i));
    r.product = product;
    r.unfair = true;
    out.push_back(r);
  }
  return out;
}

/// 150 days, 2 products, one injected burst: long enough for ~15 epochs
/// of checkpoints, compaction, trust folding, and real alarms.
std::vector<rating::Rating> make_feed() {
  rating::FairDataConfig config;
  config.product_count = 2;
  config.history_days = 150.0;
  config.seed = 7;
  const rating::Dataset data =
      rating::FairDataGenerator(config).generate().with_added(
          burst_attack(ProductId(1), 60.0, 72.0, 50, 9));
  std::vector<rating::Rating> all;
  for (ProductId id : data.product_ids()) {
    const auto rs = data.product(id).rows();
    all.insert(all.end(), rs.begin(), rs.end());
  }
  std::sort(all.begin(), all.end(), rating::ByTime{});
  return all;
}

OnlineConfig base_config() {
  OnlineConfig config;
  config.epoch_days = 10.0;
  config.trust_forgetting = 0.95;
  config.retention_days = 40.0;
  return config;
}

struct Observable {
  std::vector<Alarm> alarms;
  std::vector<OnlineEpochStats> epochs;
  std::vector<trust::RaterCounts> trust;
  std::size_t ingested = 0;
  std::size_t resident = 0;
  std::size_t compacted = 0;

  friend bool operator==(const Observable&, const Observable&) = default;
};

Observable observe(const OnlineMonitor& m) {
  return Observable{m.alarms(),           m.epoch_stats(),
                    m.trust().export_counts(), m.ingested(),
                    m.resident_ratings(), m.compacted_ratings()};
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_("rab-chaos-scratch-" + name) {
    fs::remove_all(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Uninterrupted run — the ground truth every chaos scenario must match.
Observable reference_run(const std::vector<rating::Rating>& feed) {
  OnlineMonitor monitor(base_config());
  for (const auto& r : feed) monitor.ingest(r);
  monitor.flush();
  return observe(monitor);
}

/// Crash-recover cycle: a "crash" abandons the monitor object entirely
/// (nothing in memory survives, like a process death), recovery builds a
/// fresh monitor, restores the newest valid generation, and replays the
/// feed from the restored high-water mark. restore_latest returning
/// nullopt (crash before the first checkpoint published) degenerates to a
/// cold replay of the whole feed — also a correct recovery.
OnlineMonitor recover(const OnlineConfig& config, const std::string& dir) {
  OnlineMonitor fresh(config);
  (void)fresh.restore_latest(dir);
  return fresh;
}

/// Runs the feed with `spec` armed; every injected IoError is treated as
/// a crash followed by recovery. Returns the final observable state and
/// reports how many crashes were survived.
Observable chaos_run(const std::vector<rating::Rating>& feed,
                     const std::string& dir, const std::string& spec,
                     int* crashes_out = nullptr) {
  OnlineConfig config = base_config();
  config.checkpoint_dir = dir;

  util::arm_failpoints(spec);
  OnlineMonitor monitor(config);
  std::size_t next = 0;
  int crashes = 0;
  // Termination: a fire-once policy crashes at most once; an every=N
  // policy's pass count is cumulative across crashes, so each recovery
  // leg gets N-1 clean passes — enough to publish fresh generations and
  // make progress. The bound is a backstop against a livelocking spec.
  while (crashes < 128) {
    try {
      while (next < feed.size()) {
        monitor.ingest(feed[next]);
        ++next;
      }
      monitor.flush();
      break;
    } catch (const IoError&) {
      ++crashes;
      monitor = recover(config, dir);
      next = monitor.ingested();
    }
  }
  util::disarm_failpoints();
  if (crashes >= 128) {
    throw LogicError("chaos_run: no forward progress under '" + spec + "'");
  }
  if (crashes_out != nullptr) *crashes_out = crashes;
  return observe(monitor);
}

/// Abrupt kill at feed position `kill_at` (no exception, no warning — the
/// monitor simply stops existing), then recover and replay to the end.
Observable kill_and_recover_run(const std::vector<rating::Rating>& feed,
                                const std::string& dir,
                                std::size_t kill_at) {
  OnlineConfig config = base_config();
  config.checkpoint_dir = dir;
  {
    OnlineMonitor doomed(config);
    for (std::size_t i = 0; i < kill_at; ++i) doomed.ingest(feed[i]);
    // Killed here; `doomed` and everything it knew is gone.
  }
  OnlineMonitor monitor = recover(config, dir);
  for (std::size_t i = monitor.ingested(); i < feed.size(); ++i) {
    monitor.ingest(feed[i]);
  }
  monitor.flush();
  return observe(monitor);
}

TEST(Chaos, SurvivesKillAtEveryCataloguedFailpoint) {
  const std::vector<rating::Rating> feed = make_feed();
  const Observable reference = reference_run(feed);

  int failpoints_that_fired = 0;
  for (const std::string_view name : util::failpoint_catalog()) {
    ScratchDir dir("fp-" + std::string(name));
    int crashes = 0;
    const Observable recovered =
        chaos_run(feed, dir.path(), std::string(name) + ":throw", &crashes);
    EXPECT_EQ(recovered, reference) << "failpoint " << name;
    // Not every site is on this scenario's path (CSV failpoints need file
    // I/O; checkpoint.read.* fire only during recovery itself) — but a
    // fired one must have crashed the run, or the injection is a no-op.
    if (util::failpoint_fires(name) > 0) {
      ++failpoints_that_fired;
      EXPECT_GE(crashes, 1) << "failpoint " << name
                            << " fired without crashing the run";
    }
  }
  // The monitor/checkpoint path must exercise a substantial share of the
  // catalog; a refactor that silently bypasses the sites should fail here.
  EXPECT_GE(failpoints_that_fired, 6);
}

TEST(Chaos, ShortAndCorruptWritesAtEverySnapshotBoundaryRecover) {
  const std::vector<rating::Rating> feed = make_feed();
  const Observable reference = reference_run(feed);
  // `short` throws in the writer (torn temp file, never published);
  // `corrupt` publishes a rotten generation whose checksum fails on the
  // next restore; `rename` loses the publish itself. Either way the final
  // state must match the uninterrupted run.
  for (const std::string& spec :
       {std::string("checkpoint.write.body:short"),
        std::string("checkpoint.write.body:corrupt,seed=3"),
        std::string("checkpoint.write.body:short,every=4"),
        std::string("checkpoint.write.rename:throw,every=5")}) {
    ScratchDir dir("io");
    EXPECT_EQ(chaos_run(feed, dir.path(), spec), reference) << spec;
  }
}

TEST(Chaos, SurvivesRandomKillPoints) {
  const std::vector<rating::Rating> feed = make_feed();
  const Observable reference = reference_run(feed);

  // >= 20 seeded random kill positions plus the edges. Positions cluster
  // anywhere: mid-epoch, right on boundaries, before the first checkpoint.
  Rng rng(2026);
  std::vector<std::size_t> kill_points{0, 1, feed.size() - 1, feed.size()};
  while (kill_points.size() < 24) {
    kill_points.push_back(
        static_cast<std::size_t>(rng.uniform_int(1, feed.size() - 1)));
  }
  for (const std::size_t kill_at : kill_points) {
    ScratchDir dir("kill-" + std::to_string(kill_at));
    EXPECT_EQ(kill_and_recover_run(feed, dir.path(), kill_at), reference)
        << "kill at " << kill_at;
  }
}

TEST(Chaos, RecoveryIsBitIdenticalAcrossThreadCounts) {
  const std::vector<rating::Rating> feed = make_feed();
  const std::size_t original_threads = util::thread_count();

  util::set_thread_count(1);
  const Observable serial_reference = reference_run(feed);
  Observable serial_recovered;
  {
    ScratchDir dir("serial");
    serial_recovered = kill_and_recover_run(feed, dir.path(),
                                            (feed.size() * 2) / 3);
  }

  util::set_thread_count(8);
  const Observable parallel_reference = reference_run(feed);
  Observable parallel_recovered;
  {
    ScratchDir dir("parallel");
    parallel_recovered = kill_and_recover_run(feed, dir.path(),
                                              (feed.size() * 2) / 3);
  }
  util::set_thread_count(original_threads);

  // One contract, four runs, one answer: serial/parallel, crashed/not.
  EXPECT_EQ(serial_reference, parallel_reference);
  EXPECT_EQ(serial_recovered, serial_reference);
  EXPECT_EQ(parallel_recovered, parallel_reference);
}

// ---------------------------------------------------------------------------
// Store-attached chaos: same contract, but durability comes from the
// mmap-backed segment log and recovery replays the store tail instead of
// the external feed.

OnlineConfig store_config(const std::string& ck_dir,
                          const std::string& store_dir) {
  OnlineConfig config = base_config();
  config.checkpoint_dir = ck_dir;
  config.store_dir = store_dir;
  // Tiny segments so this ~60KB feed rolls, seals, and consolidates many
  // times — otherwise the seal/compact failpoints are never on the path.
  config.store_segment_bytes = 8 * 1024;
  config.store_group_ratings = 256;
  return config;
}

/// Store-attached crash-recover loop. Recovery is restore_from_store():
/// newest valid checkpoint plus a binary replay of the segment-log tail —
/// the external feed is only consulted for rows the store never durably
/// committed (monitor.ingested() after restore covers every stored row, so
/// re-ingesting from there never double-appends). Recovery itself runs
/// inside the try block: reopening the store can hit its own failpoints,
/// and that too must be survivable.
Observable store_chaos_run(const std::vector<rating::Rating>& feed,
                           const OnlineConfig& config, const std::string& spec,
                           int* crashes_out = nullptr) {
  util::arm_failpoints(spec);
  std::optional<OnlineMonitor> monitor;
  std::size_t next = 0;
  int crashes = 0;
  while (crashes < 128) {
    try {
      if (!monitor.has_value()) {
        monitor.emplace(config);
        (void)monitor->restore_from_store();
        next = monitor->ingested();
      }
      while (next < feed.size()) {
        monitor->ingest(feed[next]);
        ++next;
      }
      monitor->flush();
      break;
    } catch (const IoError&) {
      ++crashes;
      monitor.reset();
    }
  }
  util::disarm_failpoints();
  if (crashes >= 128) {
    throw LogicError("store_chaos_run: no forward progress under '" + spec +
                     "'");
  }
  if (crashes_out != nullptr) *crashes_out = crashes;
  return monitor.has_value() ? observe(*monitor) : Observable{};
}

TEST(Chaos, StoreSurvivesCrashAtEveryStoreFailpoint) {
  const std::vector<rating::Rating> feed = make_feed();
  const Observable reference = reference_run(feed);

  int failpoints_that_fired = 0;
  for (const std::string_view name : util::failpoint_catalog()) {
    if (!name.starts_with("store.")) continue;
    ScratchDir ck("st-fp-ck-" + std::string(name));
    ScratchDir st("st-fp-store-" + std::string(name));
    int crashes = 0;
    const Observable recovered =
        store_chaos_run(feed, store_config(ck.path(), st.path()),
                        std::string(name) + ":throw", &crashes);
    EXPECT_EQ(recovered, reference) << "failpoint " << name;
    if (util::failpoint_fires(name) > 0) {
      ++failpoints_that_fired;
      EXPECT_GE(crashes, 1) << "failpoint " << name
                            << " fired without crashing the run";
    }
  }
  // Append, fsync, seal, and the reopen path must all be on the hot path
  // of a store-attached run; compaction sites join once epochs roll.
  EXPECT_GE(failpoints_that_fired, 5);
}

TEST(Chaos, StoreTornAndCorruptGroupWritesRecover) {
  const std::vector<rating::Rating> feed = make_feed();
  const Observable reference = reference_run(feed);
  // `short` tears a columnar frame mid-write (IoError, then the reopened
  // store truncates the tail back to the last commit marker); repeated
  // every=N variants tear several groups across recoveries; fsync failures
  // surface the torn-group case where buffered rows die with the process.
  for (const std::string& spec :
       {std::string("store.append.frame:short"),
        std::string("store.append.frame:short,every=6"),
        std::string("store.append.fsync:throw,every=5"),
        std::string("store.seal:throw"),
        std::string("store.compact.write:short"),
        std::string("store.compact.rename:throw")}) {
    ScratchDir ck("st-torn-ck");
    ScratchDir st("st-torn-store");
    EXPECT_EQ(store_chaos_run(feed, store_config(ck.path(), st.path()), spec),
              reference)
        << spec;
  }
}

TEST(Chaos, StoreCorruptGroupWriteIsDroppedAtRestartNotTrusted) {
  const std::vector<rating::Rating> feed = make_feed();
  const Observable reference = reference_run(feed);
  // A `corrupt` fault does not throw — rotten bytes land in the segment
  // and the process keeps going, so the damage only surfaces at the next
  // restart: recovery must CRC-reject the rotten group, truncate to the
  // last intact commit, and re-ingest the lost rows from the feed. Default
  // segment size keeps the rot in the unsealed tail, where truncation is
  // legal; had the segment sealed over it, open would (correctly) refuse
  // the store outright — that contract is pinned in test_store.cpp.
  for (const std::size_t kill_at :
       {feed.size() / 3, (feed.size() * 2) / 3, feed.size()}) {
    ScratchDir ck("st-rot-ck-" + std::to_string(kill_at));
    ScratchDir st("st-rot-store-" + std::to_string(kill_at));
    OnlineConfig config = store_config(ck.path(), st.path());
    config.store_segment_bytes = 8ull << 20;
    util::arm_failpoints("store.append.frame:corrupt,seed=11");
    {
      OnlineMonitor doomed(config);
      for (std::size_t i = 0; i < kill_at; ++i) doomed.ingest(feed[i]);
      // Killed here with a rotten group already on disk.
    }
    util::disarm_failpoints();
    OnlineMonitor monitor(config);
    (void)monitor.restore_from_store();
    for (std::size_t i = monitor.ingested(); i < feed.size(); ++i) {
      monitor.ingest(feed[i]);
    }
    monitor.flush();
    EXPECT_EQ(observe(monitor), reference) << "kill at " << kill_at;
  }
}

TEST(Chaos, RepeatedCrashesAcrossGenerationsStillConverge) {
  const std::vector<rating::Rating> feed = make_feed();
  const Observable reference = reference_run(feed);
  ScratchDir dir("repeat");
  OnlineConfig config = base_config();
  config.checkpoint_dir = dir.path();

  // Kill every ~eighth of the feed — several crashes per retention window,
  // some landing between checkpoints of the same generation.
  OnlineMonitor monitor(config);
  std::size_t next = 0;
  for (int leg = 1; leg <= 8; ++leg) {
    const std::size_t stop = feed.size() * static_cast<std::size_t>(leg) / 8;
    while (next < stop) {
      monitor.ingest(feed[next]);
      ++next;
    }
    if (leg < 8) {
      monitor = recover(config, dir.path());
      next = monitor.ingested();
    }
  }
  monitor.flush();
  EXPECT_EQ(observe(monitor), reference);
}

}  // namespace
}  // namespace rab::detectors
