// Tests for the non-stationary fair-data features (launch surge, weekly
// pattern) and the detectors' robustness to them.
#include <gtest/gtest.h>

#include "detectors/integrator.hpp"
#include "rating/fair_generator.hpp"

namespace rab::rating {
namespace {

TEST(Nonstationary, RejectsBadConfig) {
  FairDataConfig config;
  config.launch_boost = -0.5;
  EXPECT_THROW(FairDataGenerator{config}, Error);
  config = FairDataConfig{};
  config.weekly_amplitude = 1.0;
  EXPECT_THROW(FairDataGenerator{config}, Error);
  config = FairDataConfig{};
  config.launch_decay_days = 0.0;
  EXPECT_THROW(FairDataGenerator{config}, Error);
}

TEST(Nonstationary, DefaultsUnchangedByFeatureCode) {
  // launch_boost = weekly_amplitude = 0 must reproduce the exact stream
  // the homogeneous generator always produced (seeded experiments depend
  // on it).
  FairDataConfig config;
  config.product_count = 1;
  config.history_days = 60.0;
  const auto base =
      FairDataGenerator(config).generate_product(ProductId(1));
  FairDataConfig again = config;
  again.launch_decay_days = 10.0;  // irrelevant while boost == 0
  const auto same =
      FairDataGenerator(again).generate_product(ProductId(1));
  ASSERT_EQ(base.size(), same.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base.at(i), same.at(i));
  }
}

TEST(Nonstationary, LaunchSurgeFrontLoadsArrivals) {
  FairDataConfig config;
  config.product_count = 1;
  config.history_days = 120.0;
  config.launch_boost = 2.0;
  config.launch_decay_days = 20.0;
  const auto stream =
      FairDataGenerator(config).generate_product(ProductId(1));
  const double early =
      static_cast<double>(stream.in_interval(Interval{0.0, 30.0}).size());
  const double late =
      static_cast<double>(stream.in_interval(Interval{90.0, 120.0}).size());
  EXPECT_GT(early, 1.4 * late);
}

TEST(Nonstationary, WeeklyPatternPreservesTotalRateRoughly) {
  FairDataConfig plain;
  plain.product_count = 1;
  plain.history_days = 180.0;
  FairDataConfig weekly = plain;
  weekly.weekly_amplitude = 0.5;
  const auto a = FairDataGenerator(plain).generate_product(ProductId(1));
  const auto b = FairDataGenerator(weekly).generate_product(ProductId(1));
  // Sinusoidal modulation integrates to ~zero: totals within 20%.
  EXPECT_NEAR(static_cast<double>(b.size()),
              static_cast<double>(a.size()),
              0.2 * static_cast<double>(a.size()));
}

TEST(Nonstationary, DetectorsSurviveLaunchSurge) {
  // A decaying launch surge is the nastiest fair pattern for an
  // arrival-rate detector (a genuine rate *decrease* everywhere); the
  // integrated pipeline must not mark swathes of the fair stream.
  FairDataConfig config;
  config.product_count = 1;
  config.history_days = 150.0;
  config.launch_boost = 2.0;
  config.weekly_amplitude = 0.3;
  const auto stream =
      FairDataGenerator(config).generate_product(ProductId(1));
  const detectors::IntegrationResult result =
      detectors::DetectorIntegrator().analyze(stream);
  const double marked =
      static_cast<double>(result.suspicious_count()) /
      static_cast<double>(stream.size());
  EXPECT_LT(marked, 0.2);
}

}  // namespace
}  // namespace rab::rating
