# Empty dependencies file for rab_cli.
# This may be replaced when dependencies are built.
