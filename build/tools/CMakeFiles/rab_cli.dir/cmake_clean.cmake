file(REMOVE_RECURSE
  "CMakeFiles/rab_cli.dir/rab_cli.cpp.o"
  "CMakeFiles/rab_cli.dir/rab_cli.cpp.o.d"
  "rab"
  "rab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rab_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
