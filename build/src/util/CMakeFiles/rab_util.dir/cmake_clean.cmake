file(REMOVE_RECURSE
  "CMakeFiles/rab_util.dir/csv.cpp.o"
  "CMakeFiles/rab_util.dir/csv.cpp.o.d"
  "librab_util.a"
  "librab_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rab_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
