# Empty compiler generated dependencies file for rab_util.
# This may be replaced when dependencies are built.
