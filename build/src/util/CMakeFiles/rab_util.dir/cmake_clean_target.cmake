file(REMOVE_RECURSE
  "librab_util.a"
)
