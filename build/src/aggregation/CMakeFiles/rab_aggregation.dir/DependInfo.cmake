
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aggregation/bf_scheme.cpp" "src/aggregation/CMakeFiles/rab_aggregation.dir/bf_scheme.cpp.o" "gcc" "src/aggregation/CMakeFiles/rab_aggregation.dir/bf_scheme.cpp.o.d"
  "/root/repo/src/aggregation/entropy_scheme.cpp" "src/aggregation/CMakeFiles/rab_aggregation.dir/entropy_scheme.cpp.o" "gcc" "src/aggregation/CMakeFiles/rab_aggregation.dir/entropy_scheme.cpp.o.d"
  "/root/repo/src/aggregation/median_scheme.cpp" "src/aggregation/CMakeFiles/rab_aggregation.dir/median_scheme.cpp.o" "gcc" "src/aggregation/CMakeFiles/rab_aggregation.dir/median_scheme.cpp.o.d"
  "/root/repo/src/aggregation/p_scheme.cpp" "src/aggregation/CMakeFiles/rab_aggregation.dir/p_scheme.cpp.o" "gcc" "src/aggregation/CMakeFiles/rab_aggregation.dir/p_scheme.cpp.o.d"
  "/root/repo/src/aggregation/sa_scheme.cpp" "src/aggregation/CMakeFiles/rab_aggregation.dir/sa_scheme.cpp.o" "gcc" "src/aggregation/CMakeFiles/rab_aggregation.dir/sa_scheme.cpp.o.d"
  "/root/repo/src/aggregation/scheme.cpp" "src/aggregation/CMakeFiles/rab_aggregation.dir/scheme.cpp.o" "gcc" "src/aggregation/CMakeFiles/rab_aggregation.dir/scheme.cpp.o.d"
  "/root/repo/src/aggregation/series_io.cpp" "src/aggregation/CMakeFiles/rab_aggregation.dir/series_io.cpp.o" "gcc" "src/aggregation/CMakeFiles/rab_aggregation.dir/series_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rab_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rating/CMakeFiles/rab_rating.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/rab_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/rab_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rab_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rab_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
