file(REMOVE_RECURSE
  "CMakeFiles/rab_aggregation.dir/bf_scheme.cpp.o"
  "CMakeFiles/rab_aggregation.dir/bf_scheme.cpp.o.d"
  "CMakeFiles/rab_aggregation.dir/entropy_scheme.cpp.o"
  "CMakeFiles/rab_aggregation.dir/entropy_scheme.cpp.o.d"
  "CMakeFiles/rab_aggregation.dir/median_scheme.cpp.o"
  "CMakeFiles/rab_aggregation.dir/median_scheme.cpp.o.d"
  "CMakeFiles/rab_aggregation.dir/p_scheme.cpp.o"
  "CMakeFiles/rab_aggregation.dir/p_scheme.cpp.o.d"
  "CMakeFiles/rab_aggregation.dir/sa_scheme.cpp.o"
  "CMakeFiles/rab_aggregation.dir/sa_scheme.cpp.o.d"
  "CMakeFiles/rab_aggregation.dir/scheme.cpp.o"
  "CMakeFiles/rab_aggregation.dir/scheme.cpp.o.d"
  "CMakeFiles/rab_aggregation.dir/series_io.cpp.o"
  "CMakeFiles/rab_aggregation.dir/series_io.cpp.o.d"
  "librab_aggregation.a"
  "librab_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rab_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
