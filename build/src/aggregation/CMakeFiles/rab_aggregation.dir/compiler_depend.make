# Empty compiler generated dependencies file for rab_aggregation.
# This may be replaced when dependencies are built.
