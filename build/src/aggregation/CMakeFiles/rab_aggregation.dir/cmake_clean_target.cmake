file(REMOVE_RECURSE
  "librab_aggregation.a"
)
