
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/ar.cpp" "src/signal/CMakeFiles/rab_signal.dir/ar.cpp.o" "gcc" "src/signal/CMakeFiles/rab_signal.dir/ar.cpp.o.d"
  "/root/repo/src/signal/autocorrelation.cpp" "src/signal/CMakeFiles/rab_signal.dir/autocorrelation.cpp.o" "gcc" "src/signal/CMakeFiles/rab_signal.dir/autocorrelation.cpp.o.d"
  "/root/repo/src/signal/curve.cpp" "src/signal/CMakeFiles/rab_signal.dir/curve.cpp.o" "gcc" "src/signal/CMakeFiles/rab_signal.dir/curve.cpp.o.d"
  "/root/repo/src/signal/windowing.cpp" "src/signal/CMakeFiles/rab_signal.dir/windowing.cpp.o" "gcc" "src/signal/CMakeFiles/rab_signal.dir/windowing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rab_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
