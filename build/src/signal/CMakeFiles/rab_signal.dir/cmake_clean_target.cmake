file(REMOVE_RECURSE
  "librab_signal.a"
)
