file(REMOVE_RECURSE
  "CMakeFiles/rab_signal.dir/ar.cpp.o"
  "CMakeFiles/rab_signal.dir/ar.cpp.o.d"
  "CMakeFiles/rab_signal.dir/autocorrelation.cpp.o"
  "CMakeFiles/rab_signal.dir/autocorrelation.cpp.o.d"
  "CMakeFiles/rab_signal.dir/curve.cpp.o"
  "CMakeFiles/rab_signal.dir/curve.cpp.o.d"
  "CMakeFiles/rab_signal.dir/windowing.cpp.o"
  "CMakeFiles/rab_signal.dir/windowing.cpp.o.d"
  "librab_signal.a"
  "librab_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rab_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
