# Empty dependencies file for rab_signal.
# This may be replaced when dependencies are built.
