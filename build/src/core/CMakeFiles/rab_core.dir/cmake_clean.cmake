file(REMOVE_RECURSE
  "CMakeFiles/rab_core.dir/attack_generator.cpp.o"
  "CMakeFiles/rab_core.dir/attack_generator.cpp.o.d"
  "CMakeFiles/rab_core.dir/region_search.cpp.o"
  "CMakeFiles/rab_core.dir/region_search.cpp.o.d"
  "CMakeFiles/rab_core.dir/time_set_generator.cpp.o"
  "CMakeFiles/rab_core.dir/time_set_generator.cpp.o.d"
  "CMakeFiles/rab_core.dir/value_set_generator.cpp.o"
  "CMakeFiles/rab_core.dir/value_set_generator.cpp.o.d"
  "CMakeFiles/rab_core.dir/value_time_mapper.cpp.o"
  "CMakeFiles/rab_core.dir/value_time_mapper.cpp.o.d"
  "librab_core.a"
  "librab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
