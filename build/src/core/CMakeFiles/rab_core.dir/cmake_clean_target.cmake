file(REMOVE_RECURSE
  "librab_core.a"
)
