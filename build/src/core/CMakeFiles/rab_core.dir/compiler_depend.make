# Empty compiler generated dependencies file for rab_core.
# This may be replaced when dependencies are built.
