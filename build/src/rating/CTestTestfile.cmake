# CMake generated Testfile for 
# Source directory: /root/repo/src/rating
# Build directory: /root/repo/build/src/rating
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
