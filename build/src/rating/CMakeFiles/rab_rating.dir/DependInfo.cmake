
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rating/dataset.cpp" "src/rating/CMakeFiles/rab_rating.dir/dataset.cpp.o" "gcc" "src/rating/CMakeFiles/rab_rating.dir/dataset.cpp.o.d"
  "/root/repo/src/rating/fair_generator.cpp" "src/rating/CMakeFiles/rab_rating.dir/fair_generator.cpp.o" "gcc" "src/rating/CMakeFiles/rab_rating.dir/fair_generator.cpp.o.d"
  "/root/repo/src/rating/io.cpp" "src/rating/CMakeFiles/rab_rating.dir/io.cpp.o" "gcc" "src/rating/CMakeFiles/rab_rating.dir/io.cpp.o.d"
  "/root/repo/src/rating/product_ratings.cpp" "src/rating/CMakeFiles/rab_rating.dir/product_ratings.cpp.o" "gcc" "src/rating/CMakeFiles/rab_rating.dir/product_ratings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rab_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rab_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
