file(REMOVE_RECURSE
  "CMakeFiles/rab_rating.dir/dataset.cpp.o"
  "CMakeFiles/rab_rating.dir/dataset.cpp.o.d"
  "CMakeFiles/rab_rating.dir/fair_generator.cpp.o"
  "CMakeFiles/rab_rating.dir/fair_generator.cpp.o.d"
  "CMakeFiles/rab_rating.dir/io.cpp.o"
  "CMakeFiles/rab_rating.dir/io.cpp.o.d"
  "CMakeFiles/rab_rating.dir/product_ratings.cpp.o"
  "CMakeFiles/rab_rating.dir/product_ratings.cpp.o.d"
  "librab_rating.a"
  "librab_rating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rab_rating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
