file(REMOVE_RECURSE
  "librab_rating.a"
)
