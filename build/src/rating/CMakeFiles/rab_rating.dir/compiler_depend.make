# Empty compiler generated dependencies file for rab_rating.
# This may be replaced when dependencies are built.
