# Empty dependencies file for rab_trust.
# This may be replaced when dependencies are built.
