file(REMOVE_RECURSE
  "librab_trust.a"
)
