file(REMOVE_RECURSE
  "CMakeFiles/rab_trust.dir/trust_manager.cpp.o"
  "CMakeFiles/rab_trust.dir/trust_manager.cpp.o.d"
  "librab_trust.a"
  "librab_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rab_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
