# Empty dependencies file for rab_cluster.
# This may be replaced when dependencies are built.
