file(REMOVE_RECURSE
  "CMakeFiles/rab_cluster.dir/single_linkage.cpp.o"
  "CMakeFiles/rab_cluster.dir/single_linkage.cpp.o.d"
  "librab_cluster.a"
  "librab_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rab_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
