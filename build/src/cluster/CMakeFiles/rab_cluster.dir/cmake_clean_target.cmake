file(REMOVE_RECURSE
  "librab_cluster.a"
)
