file(REMOVE_RECURSE
  "CMakeFiles/rab_detectors.dir/arc_detector.cpp.o"
  "CMakeFiles/rab_detectors.dir/arc_detector.cpp.o.d"
  "CMakeFiles/rab_detectors.dir/hc_detector.cpp.o"
  "CMakeFiles/rab_detectors.dir/hc_detector.cpp.o.d"
  "CMakeFiles/rab_detectors.dir/integrator.cpp.o"
  "CMakeFiles/rab_detectors.dir/integrator.cpp.o.d"
  "CMakeFiles/rab_detectors.dir/mc_detector.cpp.o"
  "CMakeFiles/rab_detectors.dir/mc_detector.cpp.o.d"
  "CMakeFiles/rab_detectors.dir/me_detector.cpp.o"
  "CMakeFiles/rab_detectors.dir/me_detector.cpp.o.d"
  "CMakeFiles/rab_detectors.dir/online_monitor.cpp.o"
  "CMakeFiles/rab_detectors.dir/online_monitor.cpp.o.d"
  "librab_detectors.a"
  "librab_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rab_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
