# Empty dependencies file for rab_detectors.
# This may be replaced when dependencies are built.
