file(REMOVE_RECURSE
  "librab_detectors.a"
)
