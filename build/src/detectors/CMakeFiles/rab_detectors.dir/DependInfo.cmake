
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detectors/arc_detector.cpp" "src/detectors/CMakeFiles/rab_detectors.dir/arc_detector.cpp.o" "gcc" "src/detectors/CMakeFiles/rab_detectors.dir/arc_detector.cpp.o.d"
  "/root/repo/src/detectors/hc_detector.cpp" "src/detectors/CMakeFiles/rab_detectors.dir/hc_detector.cpp.o" "gcc" "src/detectors/CMakeFiles/rab_detectors.dir/hc_detector.cpp.o.d"
  "/root/repo/src/detectors/integrator.cpp" "src/detectors/CMakeFiles/rab_detectors.dir/integrator.cpp.o" "gcc" "src/detectors/CMakeFiles/rab_detectors.dir/integrator.cpp.o.d"
  "/root/repo/src/detectors/mc_detector.cpp" "src/detectors/CMakeFiles/rab_detectors.dir/mc_detector.cpp.o" "gcc" "src/detectors/CMakeFiles/rab_detectors.dir/mc_detector.cpp.o.d"
  "/root/repo/src/detectors/me_detector.cpp" "src/detectors/CMakeFiles/rab_detectors.dir/me_detector.cpp.o" "gcc" "src/detectors/CMakeFiles/rab_detectors.dir/me_detector.cpp.o.d"
  "/root/repo/src/detectors/online_monitor.cpp" "src/detectors/CMakeFiles/rab_detectors.dir/online_monitor.cpp.o" "gcc" "src/detectors/CMakeFiles/rab_detectors.dir/online_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trust/CMakeFiles/rab_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rab_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rab_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rab_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/rating/CMakeFiles/rab_rating.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
