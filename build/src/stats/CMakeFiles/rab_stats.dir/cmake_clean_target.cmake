file(REMOVE_RECURSE
  "librab_stats.a"
)
