# Empty dependencies file for rab_stats.
# This may be replaced when dependencies are built.
