
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/beta.cpp" "src/stats/CMakeFiles/rab_stats.dir/beta.cpp.o" "gcc" "src/stats/CMakeFiles/rab_stats.dir/beta.cpp.o.d"
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/rab_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/rab_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/rab_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/rab_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/glrt.cpp" "src/stats/CMakeFiles/rab_stats.dir/glrt.cpp.o" "gcc" "src/stats/CMakeFiles/rab_stats.dir/glrt.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/rab_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/rab_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/linalg.cpp" "src/stats/CMakeFiles/rab_stats.dir/linalg.cpp.o" "gcc" "src/stats/CMakeFiles/rab_stats.dir/linalg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
