file(REMOVE_RECURSE
  "CMakeFiles/rab_stats.dir/beta.cpp.o"
  "CMakeFiles/rab_stats.dir/beta.cpp.o.d"
  "CMakeFiles/rab_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/rab_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/rab_stats.dir/descriptive.cpp.o"
  "CMakeFiles/rab_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/rab_stats.dir/glrt.cpp.o"
  "CMakeFiles/rab_stats.dir/glrt.cpp.o.d"
  "CMakeFiles/rab_stats.dir/histogram.cpp.o"
  "CMakeFiles/rab_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/rab_stats.dir/linalg.cpp.o"
  "CMakeFiles/rab_stats.dir/linalg.cpp.o.d"
  "librab_stats.a"
  "librab_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rab_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
