file(REMOVE_RECURSE
  "librab_challenge.a"
)
