# Empty dependencies file for rab_challenge.
# This may be replaced when dependencies are built.
