
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/challenge/analysis.cpp" "src/challenge/CMakeFiles/rab_challenge.dir/analysis.cpp.o" "gcc" "src/challenge/CMakeFiles/rab_challenge.dir/analysis.cpp.o.d"
  "/root/repo/src/challenge/challenge.cpp" "src/challenge/CMakeFiles/rab_challenge.dir/challenge.cpp.o" "gcc" "src/challenge/CMakeFiles/rab_challenge.dir/challenge.cpp.o.d"
  "/root/repo/src/challenge/collusion.cpp" "src/challenge/CMakeFiles/rab_challenge.dir/collusion.cpp.o" "gcc" "src/challenge/CMakeFiles/rab_challenge.dir/collusion.cpp.o.d"
  "/root/repo/src/challenge/detection_quality.cpp" "src/challenge/CMakeFiles/rab_challenge.dir/detection_quality.cpp.o" "gcc" "src/challenge/CMakeFiles/rab_challenge.dir/detection_quality.cpp.o.d"
  "/root/repo/src/challenge/mp.cpp" "src/challenge/CMakeFiles/rab_challenge.dir/mp.cpp.o" "gcc" "src/challenge/CMakeFiles/rab_challenge.dir/mp.cpp.o.d"
  "/root/repo/src/challenge/participants.cpp" "src/challenge/CMakeFiles/rab_challenge.dir/participants.cpp.o" "gcc" "src/challenge/CMakeFiles/rab_challenge.dir/participants.cpp.o.d"
  "/root/repo/src/challenge/report.cpp" "src/challenge/CMakeFiles/rab_challenge.dir/report.cpp.o" "gcc" "src/challenge/CMakeFiles/rab_challenge.dir/report.cpp.o.d"
  "/root/repo/src/challenge/submission.cpp" "src/challenge/CMakeFiles/rab_challenge.dir/submission.cpp.o" "gcc" "src/challenge/CMakeFiles/rab_challenge.dir/submission.cpp.o.d"
  "/root/repo/src/challenge/submission_io.cpp" "src/challenge/CMakeFiles/rab_challenge.dir/submission_io.cpp.o" "gcc" "src/challenge/CMakeFiles/rab_challenge.dir/submission_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rab_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rating/CMakeFiles/rab_rating.dir/DependInfo.cmake"
  "/root/repo/build/src/aggregation/CMakeFiles/rab_aggregation.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/rab_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rab_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rab_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/rab_trust.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
