file(REMOVE_RECURSE
  "CMakeFiles/rab_challenge.dir/analysis.cpp.o"
  "CMakeFiles/rab_challenge.dir/analysis.cpp.o.d"
  "CMakeFiles/rab_challenge.dir/challenge.cpp.o"
  "CMakeFiles/rab_challenge.dir/challenge.cpp.o.d"
  "CMakeFiles/rab_challenge.dir/collusion.cpp.o"
  "CMakeFiles/rab_challenge.dir/collusion.cpp.o.d"
  "CMakeFiles/rab_challenge.dir/detection_quality.cpp.o"
  "CMakeFiles/rab_challenge.dir/detection_quality.cpp.o.d"
  "CMakeFiles/rab_challenge.dir/mp.cpp.o"
  "CMakeFiles/rab_challenge.dir/mp.cpp.o.d"
  "CMakeFiles/rab_challenge.dir/participants.cpp.o"
  "CMakeFiles/rab_challenge.dir/participants.cpp.o.d"
  "CMakeFiles/rab_challenge.dir/report.cpp.o"
  "CMakeFiles/rab_challenge.dir/report.cpp.o.d"
  "CMakeFiles/rab_challenge.dir/submission.cpp.o"
  "CMakeFiles/rab_challenge.dir/submission.cpp.o.d"
  "CMakeFiles/rab_challenge.dir/submission_io.cpp.o"
  "CMakeFiles/rab_challenge.dir/submission_io.cpp.o.d"
  "librab_challenge.a"
  "librab_challenge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rab_challenge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
