# Empty dependencies file for test_ar.
# This may be replaced when dependencies are built.
