file(REMOVE_RECURSE
  "CMakeFiles/test_ar.dir/test_ar.cpp.o"
  "CMakeFiles/test_ar.dir/test_ar.cpp.o.d"
  "test_ar"
  "test_ar.pdb"
  "test_ar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
