# Empty compiler generated dependencies file for test_scheme_contract.
# This may be replaced when dependencies are built.
