file(REMOVE_RECURSE
  "CMakeFiles/test_scheme_contract.dir/test_scheme_contract.cpp.o"
  "CMakeFiles/test_scheme_contract.dir/test_scheme_contract.cpp.o.d"
  "test_scheme_contract"
  "test_scheme_contract.pdb"
  "test_scheme_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheme_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
