file(REMOVE_RECURSE
  "CMakeFiles/test_rating.dir/test_rating.cpp.o"
  "CMakeFiles/test_rating.dir/test_rating.cpp.o.d"
  "test_rating"
  "test_rating.pdb"
  "test_rating[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
