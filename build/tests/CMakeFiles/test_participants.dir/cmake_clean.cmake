file(REMOVE_RECURSE
  "CMakeFiles/test_participants.dir/test_participants.cpp.o"
  "CMakeFiles/test_participants.dir/test_participants.cpp.o.d"
  "test_participants"
  "test_participants.pdb"
  "test_participants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_participants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
