# Empty compiler generated dependencies file for test_participants.
# This may be replaced when dependencies are built.
