file(REMOVE_RECURSE
  "CMakeFiles/test_mp_properties.dir/test_mp_properties.cpp.o"
  "CMakeFiles/test_mp_properties.dir/test_mp_properties.cpp.o.d"
  "test_mp_properties"
  "test_mp_properties.pdb"
  "test_mp_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mp_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
