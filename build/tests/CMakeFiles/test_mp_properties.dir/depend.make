# Empty dependencies file for test_mp_properties.
# This may be replaced when dependencies are built.
