
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_detectors.cpp" "tests/CMakeFiles/test_detectors.dir/test_detectors.cpp.o" "gcc" "tests/CMakeFiles/test_detectors.dir/test_detectors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/challenge/CMakeFiles/rab_challenge.dir/DependInfo.cmake"
  "/root/repo/build/src/aggregation/CMakeFiles/rab_aggregation.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/rab_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rab_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/rating/CMakeFiles/rab_rating.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rab_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/rab_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rab_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
