file(REMOVE_RECURSE
  "CMakeFiles/test_fair_generator.dir/test_fair_generator.cpp.o"
  "CMakeFiles/test_fair_generator.dir/test_fair_generator.cpp.o.d"
  "test_fair_generator"
  "test_fair_generator.pdb"
  "test_fair_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fair_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
