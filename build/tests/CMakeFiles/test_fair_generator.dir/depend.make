# Empty dependencies file for test_fair_generator.
# This may be replaced when dependencies are built.
