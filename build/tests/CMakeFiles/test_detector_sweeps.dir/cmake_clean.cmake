file(REMOVE_RECURSE
  "CMakeFiles/test_detector_sweeps.dir/test_detector_sweeps.cpp.o"
  "CMakeFiles/test_detector_sweeps.dir/test_detector_sweeps.cpp.o.d"
  "test_detector_sweeps"
  "test_detector_sweeps.pdb"
  "test_detector_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detector_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
