# Empty dependencies file for test_detector_sweeps.
# This may be replaced when dependencies are built.
