# Empty compiler generated dependencies file for test_nonstationary.
# This may be replaced when dependencies are built.
