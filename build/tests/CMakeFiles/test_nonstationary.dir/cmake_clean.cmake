file(REMOVE_RECURSE
  "CMakeFiles/test_nonstationary.dir/test_nonstationary.cpp.o"
  "CMakeFiles/test_nonstationary.dir/test_nonstationary.cpp.o.d"
  "test_nonstationary"
  "test_nonstationary.pdb"
  "test_nonstationary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonstationary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
