file(REMOVE_RECURSE
  "CMakeFiles/test_glrt.dir/test_glrt.cpp.o"
  "CMakeFiles/test_glrt.dir/test_glrt.cpp.o.d"
  "test_glrt"
  "test_glrt.pdb"
  "test_glrt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_glrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
