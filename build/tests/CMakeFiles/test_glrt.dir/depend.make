# Empty dependencies file for test_glrt.
# This may be replaced when dependencies are built.
