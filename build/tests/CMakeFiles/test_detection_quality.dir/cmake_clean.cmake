file(REMOVE_RECURSE
  "CMakeFiles/test_detection_quality.dir/test_detection_quality.cpp.o"
  "CMakeFiles/test_detection_quality.dir/test_detection_quality.cpp.o.d"
  "test_detection_quality"
  "test_detection_quality.pdb"
  "test_detection_quality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detection_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
