# Empty compiler generated dependencies file for test_strategy_grid.
# This may be replaced when dependencies are built.
