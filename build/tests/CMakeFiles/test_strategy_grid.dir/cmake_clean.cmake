file(REMOVE_RECURSE
  "CMakeFiles/test_strategy_grid.dir/test_strategy_grid.cpp.o"
  "CMakeFiles/test_strategy_grid.dir/test_strategy_grid.cpp.o.d"
  "test_strategy_grid"
  "test_strategy_grid.pdb"
  "test_strategy_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strategy_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
