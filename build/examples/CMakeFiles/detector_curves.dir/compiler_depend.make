# Empty compiler generated dependencies file for detector_curves.
# This may be replaced when dependencies are built.
