file(REMOVE_RECURSE
  "CMakeFiles/detector_curves.dir/detector_curves.cpp.o"
  "CMakeFiles/detector_curves.dir/detector_curves.cpp.o.d"
  "detector_curves"
  "detector_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
