# Empty compiler generated dependencies file for defense_evaluation.
# This may be replaced when dependencies are built.
