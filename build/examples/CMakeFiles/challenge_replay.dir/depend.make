# Empty dependencies file for challenge_replay.
# This may be replaced when dependencies are built.
