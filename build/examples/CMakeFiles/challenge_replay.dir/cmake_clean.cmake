file(REMOVE_RECURSE
  "CMakeFiles/challenge_replay.dir/challenge_replay.cpp.o"
  "CMakeFiles/challenge_replay.dir/challenge_replay.cpp.o.d"
  "challenge_replay"
  "challenge_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/challenge_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
