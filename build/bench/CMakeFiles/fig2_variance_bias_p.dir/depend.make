# Empty dependencies file for fig2_variance_bias_p.
# This may be replaced when dependencies are built.
