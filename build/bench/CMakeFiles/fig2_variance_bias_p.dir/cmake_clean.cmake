file(REMOVE_RECURSE
  "CMakeFiles/fig2_variance_bias_p.dir/fig2_variance_bias_p.cpp.o"
  "CMakeFiles/fig2_variance_bias_p.dir/fig2_variance_bias_p.cpp.o.d"
  "fig2_variance_bias_p"
  "fig2_variance_bias_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_variance_bias_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
