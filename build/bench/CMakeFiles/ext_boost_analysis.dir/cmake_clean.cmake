file(REMOVE_RECURSE
  "CMakeFiles/ext_boost_analysis.dir/ext_boost_analysis.cpp.o"
  "CMakeFiles/ext_boost_analysis.dir/ext_boost_analysis.cpp.o.d"
  "ext_boost_analysis"
  "ext_boost_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_boost_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
