# Empty compiler generated dependencies file for ext_boost_analysis.
# This may be replaced when dependencies are built.
