# Empty compiler generated dependencies file for fig8_attack_generator.
# This may be replaced when dependencies are built.
