file(REMOVE_RECURSE
  "CMakeFiles/fig8_attack_generator.dir/fig8_attack_generator.cpp.o"
  "CMakeFiles/fig8_attack_generator.dir/fig8_attack_generator.cpp.o.d"
  "fig8_attack_generator"
  "fig8_attack_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_attack_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
