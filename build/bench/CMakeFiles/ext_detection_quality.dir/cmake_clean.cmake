file(REMOVE_RECURSE
  "CMakeFiles/ext_detection_quality.dir/ext_detection_quality.cpp.o"
  "CMakeFiles/ext_detection_quality.dir/ext_detection_quality.cpp.o.d"
  "ext_detection_quality"
  "ext_detection_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_detection_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
