# Empty compiler generated dependencies file for ext_detection_quality.
# This may be replaced when dependencies are built.
