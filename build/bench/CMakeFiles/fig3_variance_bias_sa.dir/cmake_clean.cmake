file(REMOVE_RECURSE
  "CMakeFiles/fig3_variance_bias_sa.dir/fig3_variance_bias_sa.cpp.o"
  "CMakeFiles/fig3_variance_bias_sa.dir/fig3_variance_bias_sa.cpp.o.d"
  "fig3_variance_bias_sa"
  "fig3_variance_bias_sa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_variance_bias_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
