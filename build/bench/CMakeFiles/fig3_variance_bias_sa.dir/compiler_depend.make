# Empty compiler generated dependencies file for fig3_variance_bias_sa.
# This may be replaced when dependencies are built.
