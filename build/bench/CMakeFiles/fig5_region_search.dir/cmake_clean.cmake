file(REMOVE_RECURSE
  "CMakeFiles/fig5_region_search.dir/fig5_region_search.cpp.o"
  "CMakeFiles/fig5_region_search.dir/fig5_region_search.cpp.o.d"
  "fig5_region_search"
  "fig5_region_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_region_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
