# Empty dependencies file for fig5_region_search.
# This may be replaced when dependencies are built.
