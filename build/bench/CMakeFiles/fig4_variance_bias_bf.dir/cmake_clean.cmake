file(REMOVE_RECURSE
  "CMakeFiles/fig4_variance_bias_bf.dir/fig4_variance_bias_bf.cpp.o"
  "CMakeFiles/fig4_variance_bias_bf.dir/fig4_variance_bias_bf.cpp.o.d"
  "fig4_variance_bias_bf"
  "fig4_variance_bias_bf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_variance_bias_bf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
