# Empty compiler generated dependencies file for fig4_variance_bias_bf.
# This may be replaced when dependencies are built.
