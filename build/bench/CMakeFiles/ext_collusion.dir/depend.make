# Empty dependencies file for ext_collusion.
# This may be replaced when dependencies are built.
