file(REMOVE_RECURSE
  "CMakeFiles/ext_collusion.dir/ext_collusion.cpp.o"
  "CMakeFiles/ext_collusion.dir/ext_collusion.cpp.o.d"
  "ext_collusion"
  "ext_collusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_collusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
