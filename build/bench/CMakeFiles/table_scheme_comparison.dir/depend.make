# Empty dependencies file for table_scheme_comparison.
# This may be replaced when dependencies are built.
