file(REMOVE_RECURSE
  "CMakeFiles/table_scheme_comparison.dir/table_scheme_comparison.cpp.o"
  "CMakeFiles/table_scheme_comparison.dir/table_scheme_comparison.cpp.o.d"
  "table_scheme_comparison"
  "table_scheme_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_scheme_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
