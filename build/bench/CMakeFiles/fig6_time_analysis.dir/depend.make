# Empty dependencies file for fig6_time_analysis.
# This may be replaced when dependencies are built.
