file(REMOVE_RECURSE
  "CMakeFiles/fig6_time_analysis.dir/fig6_time_analysis.cpp.o"
  "CMakeFiles/fig6_time_analysis.dir/fig6_time_analysis.cpp.o.d"
  "fig6_time_analysis"
  "fig6_time_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_time_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
