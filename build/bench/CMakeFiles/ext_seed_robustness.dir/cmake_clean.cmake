file(REMOVE_RECURSE
  "CMakeFiles/ext_seed_robustness.dir/ext_seed_robustness.cpp.o"
  "CMakeFiles/ext_seed_robustness.dir/ext_seed_robustness.cpp.o.d"
  "ext_seed_robustness"
  "ext_seed_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_seed_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
